"""Validated error envelope of the analytic model engine.

The fast engine's contract is *byte-identical parity* with the DES
(``tests/test_fast_parity.py``).  The model engine deliberately trades
that away for O(1)-per-point cost, so its contract is different: a
**validated error envelope**.  This suite pins that envelope — every
Section 8 scheduler, across platform shapes, port configurations and
scenario timelines, must estimate the fast engine's makespan within a
per-regime relative tolerance:

* stationary paper-scale runs: tight (≤ 10 %; measured ≤ ~5 %);
* heterogeneous platforms, two-port mode: ≤ 10 %;
* small problems (few chunks per worker): looser (≤ 15 %) — the
  chunk-granularity model has fewer events to average over;
* time-varying scenarios with *static* schedulers: ≤ 15 %;
* scenarios with *demand-driven* schedulers: ≤ 40 % — the model
  resolves work at chunk granularity, so rate changes reorder its
  demand queue slightly earlier/later than the simulators';
* dropout scenarios: within a factor of 2 (the degenerate regime —
  a 50× rate cliff lands mid-chunk).

Counted quantities are *not* estimates: on every stationary run the
model's communicated blocks, update totals, enrolled-worker sets and
per-worker memory peaks must equal the fast engine's exactly.

docs/engines.md describes the three-tier contract; the tolerances here
are the normative statement of "validated".
"""

from __future__ import annotations

import pytest

from repro.analysis import summarize_trace
from repro.blocks import ProblemShape, make_product_instance
from repro.engine import (
    ModelEngineUnsupported,
    run_model,
    run_scheduler,
    tile_chunks,
)
from repro.platform import Platform, Worker, table2_platform, ut_cluster_platform
from repro.scenarios import Scenario
from repro.schedulers import (
    SECTION8_SCHEDULERS,
    HeteroIncremental,
    HoLM,
    all_section8_schedulers,
    section8_scheduler,
)
from repro.schedulers.base import DemandChunkScheduler
from repro.workloads import fig10_workloads

ALGOS = tuple(SECTION8_SCHEDULERS)

#: Per-regime relative-makespan tolerances (the envelope itself).
TOL_STATIONARY = 0.10
TOL_SMALL = 0.15
TOL_SCENARIO_STATIC = 0.15
TOL_SCENARIO_DEMAND = 0.40
TOL_DROPOUT_FACTOR = 2.0


def rel_err(estimate, trace) -> float:
    # work_makespan: background-traffic holds outlasting the real work
    # extend the simulators' port window but delayed nothing; the model
    # estimates the work. Identical to makespan without background.
    ref = trace.work_makespan
    return abs(estimate.makespan - ref) / ref


def hetero5_platform() -> Platform:
    """A 5-worker fully heterogeneous star (distinct c, w and m)."""
    workers = tuple(
        Worker(i + 1, c=c, w=w, m=m)
        for i, (c, w, m) in enumerate(
            [
                (1.0, 2.0, 4000),
                (1.5, 1.2, 9000),
                (0.8, 3.0, 4500),
                (2.5, 0.9, 14000),
                (1.2, 1.6, 6000),
            ]
        )
    )
    return Platform(workers, name="het5")


def assert_counts_match(estimate, trace, scheduler) -> None:
    """Stationary runs: counted quantities are exact, not estimated.

    Per-worker memory peaks are exact for static schedulers.  Demand
    queues break ties by completion order, which the model resolves at
    chunk granularity — workers may swap chunks (and the tail chunk's
    smaller peak lands on a different worker), so there only the
    fleet-wide peak is pinned.
    """
    summary = summarize_trace(trace)
    assert estimate.comm_blocks == summary.comm_blocks
    assert estimate.total_updates == summary.updates
    assert estimate.enrolled_workers == trace.enrolled_workers
    if isinstance(scheduler, DemandChunkScheduler):
        assert max(estimate.memory_peak.values()) == max(
            trace.memory_peak.values()
        )
    else:
        assert estimate.memory_peak == trace.memory_peak


class TestStationaryPaperScale:
    """All seven algorithms × the three Section 8.3 workloads."""

    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize(
        "workload", fig10_workloads(), ids=lambda w: w.name
    )
    def test_envelope(self, workload, algorithm):
        platform = ut_cluster_platform(p=8)
        shape = workload.shape(80)
        scheduler = section8_scheduler(algorithm)
        trace = run_scheduler(scheduler, platform, shape)
        estimate = run_scheduler(scheduler, platform, shape, engine="model")
        assert rel_err(estimate, trace) <= TOL_STATIONARY
        assert_counts_match(estimate, trace, scheduler)

    def test_summary_interface_matches_trace_summary(self):
        """``ModelEstimate`` mirrors the Trace summary surface."""
        platform = ut_cluster_platform(p=8)
        shape = fig10_workloads()[0].shape(80)
        estimate = run_scheduler(HoLM(), platform, shape, engine="model")
        s = estimate.to_summary()
        assert s.makespan == pytest.approx(estimate.makespan)
        assert s.comm_blocks == estimate.comm_blocks
        assert s.updates == estimate.total_updates
        assert 0.0 < s.port_utilisation <= 1.0
        assert estimate.work_makespan == estimate.makespan
        assert estimate.check_invariants() is None


class TestHeterogeneousPlatforms:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_section8_on_het5(self, algorithm):
        platform = hetero5_platform()
        shape = ProblemShape(r=60, s=80, t=60, q=40)
        scheduler = section8_scheduler(algorithm)
        trace = run_scheduler(scheduler, platform, shape)
        estimate = run_scheduler(scheduler, platform, shape, engine="model")
        assert rel_err(estimate, trace) <= TOL_STATIONARY
        assert_counts_match(estimate, trace, scheduler)

    @pytest.mark.parametrize("variant", ["global", "local", "lookahead"])
    def test_hetero_incremental_on_table2(self, variant):
        platform = table2_platform()
        shape = ProblemShape(r=24, s=36, t=12, q=8)
        scheduler = HeteroIncremental(variant)
        trace = run_scheduler(scheduler, platform, shape)
        estimate = run_scheduler(
            HeteroIncremental(variant), platform, shape, engine="model"
        )
        assert rel_err(estimate, trace) <= TOL_STATIONARY
        assert_counts_match(estimate, trace, scheduler)


class TestTwoPort:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_envelope(self, algorithm):
        platform = ut_cluster_platform(p=8)
        shape = fig10_workloads()[0].shape(80)
        scheduler = section8_scheduler(algorithm)
        trace = run_scheduler(scheduler, platform, shape, two_port=True)
        estimate = run_scheduler(
            scheduler, platform, shape, two_port=True, engine="model"
        )
        assert estimate.two_port
        assert rel_err(estimate, trace) <= TOL_STATIONARY
        assert_counts_match(estimate, trace, scheduler)
        assert len(estimate.port_busy) == 2
        assert estimate.port_busy[1] > 0.0


class TestSmallProblems:
    """Few chunks per worker: discretization error peaks here."""

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_envelope(self, algorithm):
        platform = Platform.homogeneous(4, c=1.0, w=2.0, m=120)
        shape = ProblemShape(r=6, s=12, t=6, q=4)
        scheduler = section8_scheduler(algorithm)
        trace = run_scheduler(scheduler, platform, shape)
        estimate = run_scheduler(scheduler, platform, shape, engine="model")
        assert rel_err(estimate, trace) <= TOL_SMALL
        assert_counts_match(estimate, trace, scheduler)


def _scenario_tolerance(scheduler) -> float:
    if isinstance(scheduler, DemandChunkScheduler):
        return TOL_SCENARIO_DEMAND
    return TOL_SCENARIO_STATIC


class TestScenarios:
    """Piecewise-stationary timelines, regime-split tolerances.

    The shape runs in ~86 s stationary on the 8-worker UT cluster, so
    every disturbance below lands mid-run.
    """

    platform = staticmethod(lambda: ut_cluster_platform(p=8))
    shape = ProblemShape(r=50, s=80, t=50, q=80)

    def _compare(self, algorithm, scenario, tolerance=None):
        scheduler = section8_scheduler(algorithm)
        platform = scenario.platform
        trace = run_scheduler(
            scheduler, platform, self.shape, scenario=scenario
        )
        estimate = run_scheduler(
            scheduler, platform, self.shape, scenario=scenario,
            engine="model",
        )
        tol = tolerance if tolerance is not None else _scenario_tolerance(scheduler)
        assert rel_err(estimate, trace) <= tol
        # Counts stay exact under rate changes (the schedule's *structure*
        # is rate-independent for static schedulers); demand schedulers
        # may order chunks differently, but totals are conserved.
        summary = summarize_trace(trace)
        assert estimate.total_updates == summary.updates
        return estimate, trace

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_mid_run_slowdown(self, algorithm):
        platform = self.platform()
        scenario = (
            Scenario.stationary(platform)
            .with_slowdown(1, 25.0, 3.0)
            .with_slowdown(2, 50.0, 2.0)
        )
        self._compare(algorithm, scenario)

    @pytest.mark.parametrize("algorithm", ["HoLM", "ORROML", "BMM"])
    def test_brownout(self, algorithm):
        platform = self.platform()
        scenario = (
            Scenario.stationary(platform)
            .with_bandwidth_step(20.0, 2.5)
            .with_bandwidth_step(60.0, 1.0 / 2.5)
        )
        self._compare(algorithm, scenario)

    @pytest.mark.parametrize("algorithm", ["HoLM", "ODDOML", "OBMM"])
    def test_background_congestion(self, algorithm):
        platform = self.platform()
        scenario = Scenario.stationary(platform)
        for i, t in enumerate((15.0, 40.0, 65.0)):
            scenario = scenario.with_background(
                t, 8.0, label=f"burst-{i}"
            )
        self._compare(algorithm, scenario)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_dropout_within_factor(self, algorithm):
        """The degenerate regime: a 50x rate cliff mid-run.

        Point estimates drift (a cliff landing mid-chunk moves whole
        chunks across it), so the bound is a *ratio*: the model must
        stay within a factor of 2 of the simulator — still plenty to
        rank a crippled configuration against healthy ones.
        """
        platform = self.platform()
        scenario = Scenario.stationary(platform).with_slowdown(
            1, 30.0, 50.0
        )
        scheduler = section8_scheduler(algorithm)
        trace = run_scheduler(
            scheduler, platform, self.shape, scenario=scenario
        )
        estimate = run_scheduler(
            scheduler, platform, self.shape, scenario=scenario,
            engine="model",
        )
        ratio = estimate.makespan / trace.work_makespan
        assert 1.0 / TOL_DROPOUT_FACTOR <= ratio <= TOL_DROPOUT_FACTOR


class TestContract:
    """Edges of the model tier's API contract."""

    def test_rejects_numeric_data(self):
        platform = ut_cluster_platform(p=4)
        shape = ProblemShape(r=4, s=8, t=4, q=4)
        data = make_product_instance(shape, seed=0)
        with pytest.raises(ValueError, match="numeric block updates"):
            run_scheduler(
                HoLM(), platform, shape, data=data, engine="model"
            )

    def test_raw_process_raises_unsupported(self):
        """No silent DES fallback: the caller chose the model tier for
        its cost profile, so an inestimable scheduler is an error."""
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        platform = Platform.homogeneous(2, c=1.0, w=1.0, m=200)

        class RawProcess(HoLM):
            name = "RawProcess"

            def launch(self, engine):
                def agent():
                    yield

                engine.env.process(agent(), name="raw")

        with pytest.raises(ModelEngineUnsupported):
            run_model(RawProcess(), platform, shape)

    def test_memory_cap_enforced(self):
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        platform = Platform.homogeneous(2, c=1.0, w=1.0, m=10)

        class Oversized(HoLM):
            name = "Oversized"

            def launch(self, engine):
                # mu=4 tile needs 16 C buffers > 10.
                engine.env.process(
                    engine.static_agent(0, tile_chunks(shape, 4), 2)
                )

        with pytest.raises(RuntimeError, match="memory exceeded"):
            run_model(Oversized(), platform, shape)
        # check_memory=False estimates the over-capacity layout anyway.
        estimate = run_model(
            Oversized(), platform, shape, check_memory=False
        )
        assert estimate.makespan > 0.0

    def test_scenario_platform_mismatch(self):
        platform = ut_cluster_platform(p=4)
        other = ut_cluster_platform(p=8)
        shape = ProblemShape(r=4, s=8, t=4, q=4)
        with pytest.raises(ValueError):
            run_model(
                HoLM(), platform, shape,
                scenario=Scenario.stationary(other),
            )

    @pytest.mark.parametrize("engine", ["fast", "des", "model"])
    def test_update_totals_are_engine_invariant(self, engine):
        platform = ut_cluster_platform(p=4)
        shape = ProblemShape(r=8, s=16, t=8, q=8)
        result = run_scheduler(HoLM(), platform, shape, engine=engine)
        summary = summarize_trace(result)
        assert summary.updates == shape.total_updates
