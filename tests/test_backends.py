"""Tests for the pluggable execution backends (repro.runner.backends).

Covers the ISSUE-5 tentpole surface: serial/process/persistent byte-
identity (synthetic sweeps and every registered experiment at smoke
scale), warm-worker reuse across sweeps, once-per-worker function
shipping, batching order, per-point failure isolation, and the
unshippable-function fallback.
"""

import functools
import json
import os
from pathlib import Path

import pytest

from repro.experiments import ALL_EXPERIMENTS, campaign_for
from repro.runner import (
    BACKENDS,
    PersistentBackend,
    ProcessBackend,
    SerialBackend,
    Sweep,
    SweepPointError,
    create_backend,
    parallel_map,
    resolve_backend,
    run_campaign,
    run_sweep,
)

BACKEND_NAMES = ("serial", "process", "persistent")


def _square_point(params):
    return {"x": params["x"], "square": params["x"] ** 2}


def _pid_point(params):
    return {"x": params["x"], "pid": os.getpid()}


def _flaky_point(params):
    if params["x"] == 2:
        raise RuntimeError("boom at x=2")
    return {"x": params["x"]}


def _touch_probe(path, token=None):
    """Append one line to ``path``; used as initializer/resolve probe."""
    with open(path, "a") as fh:
        fh.write(f"{os.getpid()}\n")


def _sweep(n=8, name="bk"):
    return Sweep(
        name=name,
        run_fn=_square_point,
        points=tuple({"x": x} for x in range(n)),
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BACKEND_NAMES) <= set(BACKENDS)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("quantum")

    def test_resolve_auto(self):
        backend, owned = resolve_backend(None, jobs=1)
        assert isinstance(backend, SerialBackend) and owned
        backend, owned = resolve_backend("auto", jobs=4)
        assert isinstance(backend, ProcessBackend) and owned

    def test_resolve_instance_not_owned(self):
        inst = SerialBackend()
        backend, owned = resolve_backend(inst, jobs=4)
        assert backend is inst and not owned


class TestByteIdentity:
    """Acceptance: all three backends produce byte-identical rows."""

    def test_synthetic_sweep(self):
        reference = run_sweep(_sweep(), backend="serial")
        for name in ("process", "persistent"):
            with create_backend(name, jobs=3) as backend:
                result = run_sweep(_sweep(), backend=backend)
            assert json.dumps(result.rows) == json.dumps(reference.rows), name

    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_every_experiment_smoke_scale(self, name, tmp_path, monkeypatch):
        """Serial, process, and persistent rows match on every registered
        experiment (smoke scale, truncated to the first points of each
        sweep to keep the matrix fast)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "baseline-cache"))
        campaign = campaign_for(name, scale=8)
        sweeps = tuple(
            Sweep(
                name=s.name,
                run_fn=s.run_fn,
                points=s.points[:3],
                aggregate=s.aggregate,
                title=s.title,
            )
            for s in campaign.sweeps
        )
        rows = {}
        for backend_name in BACKEND_NAMES:
            with create_backend(backend_name, jobs=2) as backend:
                result = run_campaign(
                    type(campaign)(campaign.name, sweeps), backend=backend
                )
            rows[backend_name] = json.dumps(
                [s.rows for s in result.sweeps], sort_keys=True
            )
        assert rows["process"] == rows["serial"]
        assert rows["persistent"] == rows["serial"]


class TestPersistentReuse:
    def test_workers_survive_across_sweeps(self):
        """The same worker pool serves every sweep of a campaign: across
        two maps at most ``jobs`` distinct processes ever run a point
        (a fresh-pool backend would show up to ``2 * jobs``)."""
        points = tuple({"x": x} for x in range(8))
        with PersistentBackend(jobs=2) as backend:
            first = [t.value["pid"] for t in backend.map(_pid_point, points)]
            second = [t.value["pid"] for t in backend.map(_pid_point, points)]
        assert first and second
        assert len(set(first) | set(second)) <= 2
        assert os.getpid() not in set(first) | set(second)  # really pooled

    def test_process_backend_pools_are_fresh(self):
        points = tuple({"x": x} for x in range(8))
        with ProcessBackend(jobs=2) as backend:
            first = {t.value["pid"] for t in backend.map(_pid_point, points)}
            second = {t.value["pid"] for t in backend.map(_pid_point, points)}
        assert first.isdisjoint(second)

    def test_function_resolved_once_per_worker(self, tmp_path):
        """Two sweeps through warm workers resolve the point function at
        most once per worker — tasks never re-ship it."""
        probe_file = tmp_path / "resolves.txt"
        probe = functools.partial(_touch_probe, str(probe_file))
        points = tuple({"x": x} for x in range(12))
        with PersistentBackend(jobs=2, resolve_probe=probe) as backend:
            list(backend.map(_square_point, points))
            list(backend.map(_square_point, points))
        resolves = probe_file.read_text().splitlines()
        assert 1 <= len(resolves) <= 2  # once per worker, not per task/sweep
        assert len(set(resolves)) == len(resolves)

    def test_process_initializer_ships_once_per_worker(self, tmp_path):
        probe_file = tmp_path / "installs.txt"
        probe = functools.partial(_touch_probe, str(probe_file))
        points = tuple({"x": x} for x in range(12))
        with ProcessBackend(jobs=2, initializer_probe=probe) as backend:
            list(backend.map(_square_point, points))
        installs = probe_file.read_text().splitlines()
        assert 1 <= len(installs) <= 2

    def test_unshippable_function_falls_back_inline(self):
        """Closures have no importable address; the persistent backend
        must still evaluate them (inline) rather than fail or run the
        wrong code."""
        seen = []

        def closure_point(params):
            seen.append(params["x"])
            return params["x"] * 2

        points = tuple({"x": x} for x in range(4))
        with PersistentBackend(jobs=2) as backend:
            values = [t.value for t in backend.map(closure_point, points)]
        assert values == [0, 2, 4, 6]
        assert seen == [0, 1, 2, 3]  # ran in this process

    def test_batching_preserves_order(self):
        points = tuple({"x": x} for x in range(23))
        with PersistentBackend(jobs=3, batch_size=4) as backend:
            values = [t.value["x"] for t in backend.map(_square_point, points)]
        assert values == list(range(23))

    def test_close_and_reuse(self):
        points = tuple({"x": x} for x in range(4))
        backend = PersistentBackend(jobs=2)
        first = [t.value for t in backend.map(_square_point, points)]
        backend.close()
        second = [t.value for t in backend.map(_square_point, points)]
        backend.close()
        assert first == second


class TestErrorIsolation:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_keep_records_error_and_continues(self, name):
        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(5)),
        )
        with create_backend(name, jobs=2) as backend:
            result = run_sweep(sweep, backend=backend, on_error="keep")
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["ok", "ok", "error", "ok", "ok"]
        assert result.errors == 1
        failed = result.outcomes[2]
        assert failed.value is None and "boom at x=2" in failed.error
        assert result.rows == [{"x": 0}, {"x": 1}, {"x": 3}, {"x": 4}]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_raise_policy_raises_sweep_point_error(self, name):
        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(5)),
        )
        with create_backend(name, jobs=2) as backend:
            with pytest.raises(SweepPointError, match="boom at x=2"):
                run_sweep(sweep, backend=backend)

    def test_persistent_pool_survives_completed_sweeps(self):
        """Regression: run_sweep's generator close() after a fully
        served sweep must not be mistaken for an abort — the warm pool
        stays up across sweeps (the backend's whole point)."""
        backend = PersistentBackend(jobs=2)
        try:
            run_sweep(_sweep(n=8), backend=backend)
            workers = list(backend._workers)
            assert workers and backend._pool is not None
            run_sweep(_sweep(n=8), backend=backend)
            # same worker processes, still warm — no respawn happened
            assert list(backend._workers) == workers
            assert backend.respawns == 0
        finally:
            backend.close()

    def test_persistent_abort_drops_queued_batches(self):
        """Abandoning an errored persistent sweep must not silently
        drain the queued batches first: the pool is terminated and the
        next map starts a fresh one."""
        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(40)),
        )
        backend = PersistentBackend(jobs=2, batch_size=1)
        try:
            with pytest.raises(SweepPointError):
                run_sweep(sweep, backend=backend)
            assert backend._pool is None  # terminated, not drained
            # The backend is still usable afterwards.
            ok = run_sweep(_sweep(n=4), backend=backend)
            assert [o.value["x"] for o in ok.outcomes] == [0, 1, 2, 3]
        finally:
            backend.close()

    def test_serial_chains_original_exception(self):
        sweep = Sweep(name="flaky", run_fn=_flaky_point, points=({"x": 2},))
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(sweep, backend="serial")
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_keep_passes_positional_holes_to_aggregate(self):
        """A custom aggregate sees failed points as the FAILED sentinel
        in their original slots — later values never shift into earlier
        ones, and a legitimate None result is never mistaken for one."""
        from repro.runner import FAILED

        seen = []

        def aggregate(values):
            seen.append(list(values))
            return [v["x"] for v in values if v is not FAILED]

        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(4)),
            aggregate=aggregate,
        )
        result = run_sweep(sweep, on_error="keep")
        assert seen == [[{"x": 0}, {"x": 1}, FAILED, {"x": 3}]]
        assert result.rows == [0, 1, 3]

    def test_legitimate_none_results_survive_default_aggregation(self):
        """A point function may validly return None; the default
        aggregation must keep it (only FAILED holes are dropped)."""

        def maybe_none(params):
            return None if params["x"] == 1 else params["x"]

        sweep = Sweep(
            name="nones",
            run_fn=maybe_none,
            points=tuple({"x": x} for x in range(3)),
        )
        result = run_sweep(sweep)
        assert result.rows == [0, None, 2]

    def test_keep_falls_back_when_aggregate_rejects_holes(self):
        """A positional aggregate that chokes on the None holes (e.g.
        indexing into a failed row) must not crash the sweep: the
        successful values publish unaggregated."""

        def positional(values):
            return [values[0]["x"], values[2]["x"]]  # blows up on None

        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(4)),
            aggregate=positional,
        )
        result = run_sweep(sweep, on_error="keep")
        assert result.errors == 1
        assert result.rows == [{"x": 0}, {"x": 1}, {"x": 3}]

    def test_errored_points_are_not_cached(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(5)),
        )
        result = run_sweep(sweep, cache=cache, on_error="keep", code="v1")
        assert result.errors == 1
        assert cache.stats().entries == 4  # the four successes only
        # A resume re-runs exactly the failed point.
        again = run_sweep(
            sweep, cache=cache, on_error="keep", code="v1", resume=True
        )
        assert again.hits == 4 and again.misses == 1


class TestParallelMapCompat:
    """The historic helper keeps its contract on the new machinery."""

    def test_matches_serial(self):
        points = tuple({"x": x} for x in range(6))
        serial = [v for v, _ in parallel_map(_square_point, points, jobs=1)]
        pooled = [v for v, _ in parallel_map(_square_point, points, jobs=3)]
        assert pooled == serial

    def test_exceptions_propagate(self):
        points = tuple({"x": x} for x in range(5))
        with pytest.raises(RuntimeError, match="boom at x=2"):
            list(parallel_map(_flaky_point, points, jobs=2))

    def test_inline_path_supports_closures(self):
        calls = []

        def fn(params):
            calls.append(params["x"])
            return params["x"]

        assert [v for v, _ in parallel_map(fn, ({"x": 1},), jobs=4)] == [1]
        assert calls == [1]


class TestStreamingProgress:
    def test_progress_streams_before_later_points_compute(self, tmp_path):
        """Outcome k's progress event fires before point k+1 runs on the
        serial backend — progress is a stream, not a post-hoc replay."""
        order = []

        def point(params):
            order.append(("run", params["x"]))
            return params["x"]

        sweep = Sweep(
            name="stream",
            run_fn=point,
            points=tuple({"x": x} for x in range(3)),
        )
        run_sweep(
            sweep, progress=lambda ev: order.append(("progress", ev.index))
        )
        assert order == [
            ("run", 0), ("progress", 0),
            ("run", 1), ("progress", 1),
            ("run", 2), ("progress", 2),
        ]

    def test_progress_status_field(self):
        events = []
        sweep = Sweep(
            name="flaky",
            run_fn=_flaky_point,
            points=tuple({"x": x} for x in range(4)),
        )
        run_sweep(sweep, on_error="keep", progress=events.append)
        assert [e.status for e in events] == ["ok", "ok", "error", "ok"]
