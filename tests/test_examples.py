"""Every example under ``examples/`` must run end to end.

The examples double as executable documentation; each exposes
``main(scale=...)`` so this suite can run the full script logic —
resource selection, simulation, numeric verification, table rendering —
at smoke scale.  New example files are picked up automatically.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: Smoke-scale keyword overrides beyond ``scale`` (kept tiny: the grid
#: demo would otherwise sweep thousands of points).
EXTRA_ARGS = {
    "capacity_planning": {"memory_points": 3, "worker_step": 8, "keep": 2},
}


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"_example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name", sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))
)
def test_example_runs_at_smoke_scale(name, capsys):
    module = _load(name)
    assert hasattr(module, "main"), (
        f"examples/{name}.py must expose main(scale=...) so it stays "
        "smoke-testable"
    )
    module.main(scale=8, **EXTRA_ARGS.get(name, {}))
    out = capsys.readouterr().out
    assert out.strip(), f"examples/{name}.py printed nothing"
