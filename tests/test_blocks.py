"""Tests for the block-matrix substrate (repro.blocks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import (
    BlockMatrix,
    ProblemShape,
    make_product_instance,
    max_block_error,
    verify_product,
)


class TestProblemShape:
    def test_from_elements_section83(self):
        # "in the first case we have r = t = 100 and s = 800"
        shape = ProblemShape.from_elements(8000, 8000, 64000, q=80)
        assert (shape.r, shape.t, shape.s) == (100, 100, 800)

    def test_from_elements_requires_divisibility(self):
        with pytest.raises(ValueError):
            ProblemShape.from_elements(8001, 8000, 64000, q=80)

    def test_counts(self):
        shape = ProblemShape(r=3, s=4, t=5, q=2)
        assert shape.c_blocks == 12
        assert shape.total_updates == 60
        assert shape.total_flops == 60 * 2 * 8

    def test_element_dims(self):
        shape = ProblemShape(r=3, s=4, t=5, q=10)
        assert (shape.n_a, shape.n_ab, shape.n_b) == (30, 50, 40)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            ProblemShape(r=0, s=1, t=1)
        with pytest.raises(ValueError):
            ProblemShape(r=1, s=1, t=1, q=0)

    def test_c_indices_row_major(self):
        shape = ProblemShape(r=2, s=2, t=1)
        assert list(shape.c_indices()) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_index_checks(self):
        shape = ProblemShape(r=2, s=3, t=4)
        shape.check_c(2, 3)
        shape.check_a(2, 4)
        shape.check_b(4, 3)
        with pytest.raises(IndexError):
            shape.check_c(3, 1)
        with pytest.raises(IndexError):
            shape.check_a(1, 5)
        with pytest.raises(IndexError):
            shape.check_b(0, 1)


class TestBlockMatrix:
    def test_zeros_and_shape(self):
        m = BlockMatrix.zeros(2, 3, q=4)
        assert m.shape == (8, 12)
        assert m.block_shape == (2, 3)

    def test_block_is_view(self):
        m = BlockMatrix.zeros(2, 2, q=2)
        m.block(1, 1)[:] = 7.0
        assert m.array[0, 0] == 7.0

    def test_set_block_and_get(self):
        m = BlockMatrix.zeros(2, 2, q=2)
        patch = np.arange(4.0).reshape(2, 2)
        m.set_block(2, 1, patch)
        assert np.array_equal(m.block(2, 1), patch)

    def test_set_block_wrong_shape(self):
        m = BlockMatrix.zeros(2, 2, q=2)
        with pytest.raises(ValueError):
            m.set_block(1, 1, np.zeros((3, 3)))

    def test_out_of_range_block(self):
        m = BlockMatrix.zeros(2, 2, q=2)
        with pytest.raises(IndexError):
            m.block(0, 1)
        with pytest.raises(IndexError):
            m.block(1, 3)

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            BlockMatrix(np.zeros((5, 4)), q=2)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            BlockMatrix(np.zeros(4), q=2)

    def test_update_block_matches_numpy(self):
        rng = np.random.default_rng(0)
        c = BlockMatrix.random(1, 1, 4, rng)
        ref = c.array.copy()
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        c.update_block(1, 1, a, b)
        assert np.allclose(c.array, ref + a @ b)

    def test_copy_is_deep(self):
        m = BlockMatrix.zeros(1, 1, q=2)
        cp = m.copy()
        cp.array[0, 0] = 9.0
        assert m.array[0, 0] == 0.0

    def test_random_seeded(self):
        a = BlockMatrix.random(2, 2, 3, np.random.default_rng(5))
        b = BlockMatrix.random(2, 2, 3, np.random.default_rng(5))
        assert np.array_equal(a.array, b.array)


class TestVerification:
    def test_make_instance_shapes(self):
        shape = ProblemShape(r=2, s=3, t=4, q=5)
        a, b, c = make_product_instance(shape, seed=1)
        assert a.block_shape == (2, 4)
        assert b.block_shape == (4, 3)
        assert c.block_shape == (2, 3)

    def test_verify_accepts_correct_product(self):
        shape = ProblemShape(r=2, s=2, t=3, q=4)
        a, b, c0 = make_product_instance(shape, seed=2)
        result = BlockMatrix(c0.array + a.array @ b.array, q=4)
        assert verify_product(a, b, c0, result)
        assert max_block_error(a, b, c0, result) == 0.0

    def test_verify_rejects_wrong_product(self):
        shape = ProblemShape(r=2, s=2, t=3, q=4)
        a, b, c0 = make_product_instance(shape, seed=3)
        wrong = c0.copy()
        assert not verify_product(a, b, c0, wrong)

    def test_freivalds_accepts_correct_product(self):
        shape = ProblemShape(r=3, s=4, t=5, q=6)
        a, b, c0 = make_product_instance(shape, seed=4)
        result = BlockMatrix(c0.array + a.array @ b.array, q=6)
        assert verify_product(a, b, c0, result, method="freivalds")

    def test_freivalds_rejects_wrong_product(self):
        shape = ProblemShape(r=3, s=4, t=5, q=6)
        a, b, c0 = make_product_instance(shape, seed=5)
        assert not verify_product(a, b, c0, c0.copy(), method="freivalds")

    def test_freivalds_catches_single_entry_error(self):
        shape = ProblemShape(r=3, s=4, t=5, q=6)
        a, b, c0 = make_product_instance(shape, seed=6)
        result = BlockMatrix(c0.array + a.array @ b.array, q=6)
        result.array[7, 11] += 1e-3
        assert not verify_product(a, b, c0, result, method="freivalds")
        # The dense reference agrees on the verdict.
        assert not verify_product(a, b, c0, result, method="dense")

    def test_freivalds_seeded_and_validated(self):
        shape = ProblemShape(r=2, s=2, t=2, q=4)
        a, b, c0 = make_product_instance(shape, seed=7)
        result = BlockMatrix(c0.array + a.array @ b.array, q=4)
        assert verify_product(
            a, b, c0, result, method="freivalds", rounds=3, seed=123
        )
        with pytest.raises(ValueError, match="unknown method"):
            verify_product(a, b, c0, result, method="exact")
        with pytest.raises(ValueError, match="rounds"):
            verify_product(a, b, c0, result, method="freivalds", rounds=0)

    @given(
        r=st.integers(1, 3),
        s=st.integers(1, 3),
        t=st.integers(1, 3),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_blockwise_accumulation_equals_dense_product(self, r, s, t, seed):
        """Property: applying every (i,j,k) block update once, in any
        fixed order, reproduces the dense product."""
        shape = ProblemShape(r=r, s=s, t=t, q=3)
        a, b, c0 = make_product_instance(shape, seed=seed)
        c = c0.copy()
        for i in range(1, r + 1):
            for j in range(1, s + 1):
                for k in range(1, t + 1):
                    c.update_block(i, j, a.block(i, k), b.block(k, j))
        assert verify_product(a, b, c0, c)
