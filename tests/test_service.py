"""Tests for the distributed sweep service (ISSUE 8).

Covers the tentpole surface: the length-prefixed frame protocol, the
journaled request log (fold, torn-line salvage, recovery, compaction),
session ring buffers with resume tokens, the daemon end-to-end through
the ``remote`` backend (including reconnect replay, fair interleaving
of concurrent clients, lease-expiry requeues and graceful drain), the
connection-chaos channels, and the acceptance crux: a ``kill -9``'d
daemon whose clients complete byte-identically via ``--resume``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.runner import (
    ChaosBackend,
    ChaosSpec,
    RemoteBackend,
    ResultCache,
    Sweep,
    run_sweep,
)
from repro.runner.backends.chaos import decide_connection
from repro.service.client import (
    DaemonUnreachable,
    ServeClient,
    ServeError,
)
from repro.service.daemon import ServeConfig, ServeDaemon
from repro.service.journal import ServiceJournal
from repro.service.protocol import (
    FrameError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.service.session import Session, SessionRegistry

REPO = Path(__file__).resolve().parent.parent
#: Daemon subprocesses must import this module to resolve fn tokens.
SUBPROC_PYTHONPATH = f"{REPO / 'src'}{os.pathsep}{Path(__file__).parent}"


def _square_point(params):
    return {"x": params["x"], "square": params["x"] ** 2}


def _slow_point(params):
    time.sleep(params.get("sleep", 0.05))
    return {"x": params["x"]}


def _hang_once_point(params):
    """Hangs forever on its first execution, instant afterwards.

    The marker file is the cross-process memory: the lease monitor's
    worker kill re-runs the batch, which then completes immediately —
    exactly the transient-wedge scenario leases exist for.
    """
    marker = Path(params["marker"]) / f"seen-{params['x']}"
    if params["x"] == params.get("wedge") and not marker.exists():
        marker.write_text("")
        time.sleep(120)
    return {"x": params["x"]}


def _sweep(n=8, name="svc", fn=_square_point, **extra):
    return Sweep(
        name=name, run_fn=fn, points=tuple({"x": x, **extra} for x in range(n))
    )


def _short_tmpdir():
    """A /tmp-rooted dir: unix socket paths must stay under ~108 bytes,
    which pytest's tmp_path does not guarantee."""
    return Path(tempfile.mkdtemp(prefix="repro-serve-", dir="/tmp"))


@pytest.fixture
def servedir():
    path = _short_tmpdir()
    yield path
    import shutil

    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture
def daemon(servedir):
    """An in-process daemon on a short socket with its own cache."""
    d = ServeDaemon(ServeConfig(
        socket_path=str(servedir / "s.sock"),
        cache_dir=str(servedir / "cache"),
        jobs=2,
        lease_s=30.0,
        quiet=True,
    ))
    d.start()
    yield d
    d.stop()


def _remote(daemon_or_sock, **env):
    sock = (
        daemon_or_sock.socket_path
        if isinstance(daemon_or_sock, ServeDaemon)
        else daemon_or_sock
    )
    return RemoteBackend(jobs=2, socket_path=str(sock))


class TestProtocol:
    def _pair(self):
        return socket.socketpair()

    def test_roundtrip(self):
        a, b = self._pair()
        send_frame(a, {"op": "hello", "n": [1, 2, {"x": None}]})
        assert recv_frame(b) == {"op": "hello", "n": [1, 2, {"x": None}]}
        a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_torn_frame_raises(self):
        a, b = self._pair()
        frame = encode_frame({"op": "x", "pad": "y" * 64})
        a.sendall(frame[: len(frame) - 5])  # die mid-body
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_oversized_length_raises(self):
        import struct

        a, b = self._pair()
        a.sendall(struct.pack("!I", 2**31))
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close(), b.close()

    def test_non_object_body_raises(self):
        import struct

        a, b = self._pair()
        body = b"[1,2,3]"
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close(), b.close()


class TestJournal:
    def test_fold_last_op_wins(self, tmp_path):
        j = ServiceJournal(tmp_path)
        j.request("t1", "s", 8)
        j.lease("t1", 0, [0, 1], expires=99.0)
        j.complete("t1", 0)
        j.lease("t1", 1, [2, 3], expires=99.0)
        j.done("t1")
        j.request("t2", "s", 4)
        j.lease("t2", 0, [0, 1], expires=99.0)
        states = j.fold()
        assert states["t1"].status == "done"
        assert states["t1"].completed == 1
        assert states["t2"].status == "open"
        assert states["t2"].leased == {0: [0, 1]}

    def test_torn_line_salvage(self, tmp_path):
        j = ServiceJournal(tmp_path)
        j.request("t1", "s", 2)
        j.done("t1")
        with open(j.path, "a") as fh:
            fh.write('{"op":"request","token":"t2","swee')  # torn by kill -9
        states = j.fold()
        assert set(states) == {"t1"}  # the torn record costs itself only

    def test_recover_closes_open_requests_and_compacts(self, tmp_path):
        j = ServiceJournal(tmp_path)
        j.request("t1", "s", 8)
        j.lease("t1", 0, [0, 1], expires=99.0)
        j.request("t2", "s", 4)
        j.done("t2")
        recovered = j.recover()
        assert [s.token for s in recovered] == ["t1"]
        assert recovered[0].leased == {0: [0, 1]}  # the in-flight work
        # after recovery everything is closed and the log is compacted
        assert j.fold() == {}
        assert j.path.read_text() == ""

    def test_compact_keeps_open_requests(self, tmp_path):
        j = ServiceJournal(tmp_path)
        for i in range(5):
            j.request(f"t{i}", "s", 1)
            j.done(f"t{i}")
        j.request("open", "s", 2)
        j.lease("open", 0, [0], expires=99.0)
        removed = j.compact()
        assert removed > 0
        states = j.fold()
        assert set(states) == {"open"}
        assert states["open"].leased == {0: [0]}

    def test_append_survives_missing_dir(self, tmp_path):
        j = ServiceJournal(tmp_path / "nested" / "deeper")
        j.request("t", "s", 1)
        assert j.fold()["t"].status == "open"


class TestSession:
    def _session(self, ring=64):
        return Session(
            token="tok", sweep="s", items=[{"x": i} for i in range(4)],
            keys=None, fn_token=("m", "f"), timeout=None, wrap=None,
            ring=ring,
        )

    def test_seq_monotonic_and_replay(self):
        s = self._session()
        for i in range(4):
            s.post_result(i, {"v": i}, 0.0, None)
        s.post({"event": "done"})
        events = s.events_after(0, timeout=0)
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]
        assert s.closed
        # replay from the middle
        tail = s.events_after(3, timeout=0)
        assert [e["seq"] for e in tail] == [4, 5]

    def test_gap_when_ring_overflows(self):
        s = self._session(ring=16)  # the enforced minimum
        for i in range(40):
            s.post_result(i % 4, {"v": i}, 0.0, None)
        assert s.events_after(1, timeout=0) is None  # position evicted

    def test_registry_reaps_only_lingered_closed_sessions(self):
        reg = SessionRegistry(linger_s=0.0)
        s = self._session()
        reg.add(s)
        assert reg.reap() == 0  # open: never reaped
        s.post({"event": "done"})
        time.sleep(0.01)
        assert reg.reap() == 1
        assert reg.get("tok") is None


class TestDaemonEndToEnd:
    def test_remote_sweep_roundtrip_and_cache(self, daemon):
        sweep = _sweep(7)
        cache = ResultCache(daemon.cache.root)
        clean = run_sweep(sweep, code="v")
        result = run_sweep(
            sweep, cache=cache, code="v", backend=_remote(daemon)
        )
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]
        # the daemon journalled the request and closed it
        states = daemon.journal.fold()
        assert all(s.status == "done" for s in states.values())
        # second client: all hits, nothing recomputed
        again = run_sweep(
            sweep, cache=cache, code="v", backend=_remote(daemon)
        )
        assert again.hits == 7 and again.misses == 0

    def test_daemon_serves_its_cache_hits(self, daemon):
        """A point the daemon's cache already holds is served without
        recomputation — the ``cached`` flag on the wire proves it."""
        sweep = _sweep(4, name="hits")
        cache = ResultCache(daemon.cache.root)
        run_sweep(sweep, cache=cache, code="v", backend=_remote(daemon))
        from repro.runner import point_key

        keys = [point_key("hits", p, "v") for p in sweep.points]
        client = ServeClient(daemon.socket_path)
        client.connect()
        client.submit(
            "hits", list(sweep.points), keys,
            ("test_service", "_square_point"),
        )
        events = list(client.events())
        client.close()
        results = [e for e in events if e["event"] == "result"]
        assert len(results) == 4
        assert all(e["cached"] for e in results)
        assert events[-1]["event"] == "done"

    def test_reconnect_replays_from_resume_token(self, daemon):
        sweep = _sweep(10, fn=_slow_point, sleep=0.05)
        client = ServeClient(daemon.socket_path)
        client.connect()
        reply = client.submit(
            "rc", list(sweep.points), None,
            ("test_service", "_slow_point"),
        )
        token = reply["token"]
        seen = {}
        stream = client.events()
        for frame in stream:
            if frame["event"] == "result":
                seen[frame["index"]] = frame
                if len(seen) == 2:
                    break
        last_seq = max(f["seq"] for f in seen.values())
        client.drop_connection()  # the partition
        client.connect()
        client.attach(token, last_seq)
        for frame in client.events():
            if frame["event"] == "result":
                assert frame["seq"] > last_seq  # replay starts after us
                seen[frame["index"]] = frame
        client.close()
        assert sorted(seen) == list(range(10))

    def test_attach_unknown_token_is_explicit(self, daemon):
        client = ServeClient(daemon.socket_path)
        client.connect()
        with pytest.raises(ServeError, match="unknown-token"):
            client.attach("no-such-token", 0)
        client.close()

    def test_unreachable_daemon_raises_loudly(self, servedir):
        backend = RemoteBackend(socket_path=str(servedir / "nope.sock"))
        backend.reconnect_retries = 0
        client_gen = backend.map(_square_point, [{"x": 1}])
        with pytest.raises(DaemonUnreachable):
            next(client_gen)

    def test_closure_falls_back_inline(self, daemon):
        captured = 3

        def closure_point(params):
            return {"v": params["x"] * captured}

        results = list(_remote(daemon).map(closure_point, [{"x": 2}]))
        assert results[0].value == {"v": 6}

    def test_fair_interleaving_of_two_clients(self, servedir):
        """With single-point batches, two concurrent campaigns must
        alternate: neither client waits for the other's whole sweep."""
        d = ServeDaemon(ServeConfig(
            socket_path=str(servedir / "fair.sock"),
            cache_dir=str(servedir / "fair-cache"),
            jobs=1, batch_points=1, quiet=True,
        ))
        d.start()
        try:
            order = []

            def campaign(tag, start):
                client = ServeClient(d.socket_path)
                client.connect()
                client.submit(
                    f"fair-{tag}",
                    [{"x": x, "sleep": 0.05} for x in range(start, start + 4)],
                    None, ("test_service", "_slow_point"),
                )
                for frame in client.events():
                    if frame["event"] == "result":
                        order.append(tag)
                client.close()

            threads = [
                threading.Thread(target=campaign, args=(tag, i * 100))
                for i, tag in enumerate("ab")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert order.count("a") == order.count("b") == 4
            # interleaved, not serialized: the first client's last point
            # resolves after the second client's first.
            first_last = {t: order.index(t) for t in "ab"}
            assert max(first_last.values()) < 4, (
                f"batches were serialized per client: {order}"
            )
        finally:
            d.stop()

    def test_lease_expiry_kills_and_requeues(self, servedir):
        """A wedged batch loses its lease: workers are killed, the pool
        requeues, and the campaign still completes correctly."""
        d = ServeDaemon(ServeConfig(
            socket_path=str(servedir / "lease.sock"),
            cache_dir=str(servedir / "lease-cache"),
            jobs=2, lease_s=1.0, quiet=True,
        ))
        d.start()
        try:
            marker = servedir / "markers"
            marker.mkdir()
            points = [
                {"x": x, "marker": str(marker), "wedge": 1} for x in range(6)
            ]
            sweep = Sweep(
                name="lease", run_fn=_hang_once_point, points=tuple(points)
            )
            result = run_sweep(sweep, backend=_remote(d))
            assert result.errors == 0
            assert [o.value["x"] for o in result.outcomes] == list(range(6))
            assert d.scheduler.lease_expiries >= 1
            assert d.backend.respawns >= 1
        finally:
            d.stop()

    def test_graceful_drain_aborts_queued_requests(self, servedir):
        d = ServeDaemon(ServeConfig(
            socket_path=str(servedir / "drain.sock"),
            cache_dir=str(servedir / "drain-cache"),
            jobs=1, batch_points=2, quiet=True,
        ))
        d.start()
        client = ServeClient(d.socket_path)
        client.connect()
        client.submit(
            "drain", [{"x": x, "sleep": 0.2} for x in range(8)],
            None, ("test_service", "_slow_point"),
        )
        stopper = threading.Thread(target=d.stop, daemon=True)
        events = []
        for frame in client.events():
            events.append(frame)
            if len([e for e in events if e["event"] == "result"]) == 1:
                stopper.start()  # drain arrives mid-campaign
        client.close()
        stopper.join(timeout=30)
        assert events[-1]["event"] in ("abort", "done")
        # the journal closed the request either way (done or abort)
        assert all(
            s.status in ("done", "aborted")
            for s in d.journal.fold().values()
        )


class TestConnectionChaos:
    def test_decide_connection_deterministic(self):
        spec = ChaosSpec(drop=0.5, dkill=0.2, seed=9)
        first = [decide_connection(spec, {"x": x}) for x in range(50)]
        again = [decide_connection(spec, {"x": x}) for x in range(50)]
        assert first == again
        assert any(c == "drop" for c in first)
        assert any(c == "dkill" for c in first)
        # sticky clears connection faults on later attempts too
        assert all(
            decide_connection(spec, {"x": x}, attempt=1) is None
            for x in range(50)
        )

    def test_spec_parse_and_validation(self):
        spec = ChaosSpec.parse("drop=0.3,dkill=0.1,seed=4")
        assert spec.connection_active and not spec.point_active
        assert spec.active
        with pytest.raises(ValueError):
            ChaosSpec(drop=1.5)

    def test_chaos_drop_converges_byte_identical(self, daemon):
        """Injected connection drops are absorbed by reconnect+replay:
        the sweep result is byte-identical to the clean run."""
        sweep = _sweep(12, name="chaosdrop")
        clean = run_sweep(sweep, code="v")
        chaotic = ChaosBackend(
            inner=_remote(daemon), spec=ChaosSpec(drop=0.35, seed=7)
        )
        result = run_sweep(sweep, code="v", backend=chaotic)
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]


def _spawn_daemon(servedir, jobs=2, lease=30.0):
    env = dict(
        os.environ,
        PYTHONPATH=SUBPROC_PYTHONPATH,
        REPRO_CACHE_DIR=str(servedir / "cache"),
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(servedir / "d.sock"),
            "--cache-dir", str(servedir / "cache"),
            "--jobs", str(jobs), "--lease", str(lease), "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 20
    sock = servedir / "d.sock"
    while time.monotonic() < deadline:
        if sock.exists():
            try:
                ServeClient(sock, connect_retries=1).ping()
                return proc
            except (DaemonUnreachable, ServeError):
                pass
        if proc.poll() is not None:
            raise RuntimeError(f"daemon died at startup: rc={proc.returncode}")
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("daemon never came up")


class TestCrashRecovery:
    """The acceptance crux: kill -9 the daemon mid-campaign, restart,
    --resume, byte-identical final results."""

    def test_kill9_daemon_restart_resume_byte_identical(
        self, servedir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "1")
        monkeypatch.setenv("REPRO_REMOTE_RETRY_DELAY", "0.05")
        sweep = _sweep(16, name="crash", fn=_slow_point, sleep=0.1)
        clean = run_sweep(sweep, code="v")
        cache = ResultCache(servedir / "cache")

        proc = _spawn_daemon(servedir)
        killed = []

        def assassin(event):
            # after a couple of points resolved, kill -9 the daemon
            if not killed and event.index >= 2:
                os.kill(proc.pid, signal.SIGKILL)
                killed.append(proc.pid)

        try:
            result = run_sweep(
                sweep, cache=cache, code="v",
                backend=_remote(servedir / "d.sock"),
                progress=assassin, on_error="keep",
            )
            assert killed, "test never fired the kill"
            proc.wait(timeout=10)
            # the campaign degraded, not crashed: missing points came
            # back as errored outcomes
            assert result.errors > 0
            completed_before = sum(
                1 for o in result.outcomes if o.status == "ok"
            )
            assert completed_before >= 1

            # restart: journal recovery closes the in-flight request
            proc = _spawn_daemon(servedir)
            journal = ServiceJournal(cache.root)
            assert all(
                s.status in ("done", "aborted")
                for s in journal.fold().values()
            )

            # --resume recomputes only what never landed in the cache
            resumed = run_sweep(
                sweep, cache=cache, code="v",
                backend=_remote(servedir / "d.sock"),
                resume=True,
            )
            assert resumed.errors == 0
            assert resumed.hits >= completed_before
            assert [o.value for o in resumed.outcomes] == [
                o.value for o in clean.outcomes
            ]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_chaos_dkill_then_restart_resume(self, servedir, monkeypatch):
        """The dkill chaos channel does the murdering through the real
        transport; the client degrades, a restarted daemon + --resume
        completes byte-identically."""
        monkeypatch.setenv("REPRO_REMOTE_RETRIES", "1")
        monkeypatch.setenv("REPRO_REMOTE_RETRY_DELAY", "0.05")
        # slow points: the daemon must still owe results when the kill
        # fires, or the client would drain them from its socket buffer
        sweep = _sweep(12, name="dkill", fn=_slow_point, sleep=0.1)
        clean = run_sweep(sweep, code="v")
        cache = ResultCache(servedir / "cache")

        proc = _spawn_daemon(servedir)
        try:
            # a seed under which exactly one point draws dkill, so the
            # daemon is murdered once, mid-campaign, deterministically
            seed = _seed_with_one_dkill(sweep.points, len(sweep.points))
            chaotic = ChaosBackend(
                inner=_remote(servedir / "d.sock"),
                spec=ChaosSpec(dkill=1.0 / len(sweep.points), seed=seed),
            )
            result = run_sweep(
                sweep, cache=cache, code="v", backend=chaotic,
                on_error="keep",
            )
            proc.wait(timeout=15)  # the chaos killed it
            assert result.errors > 0

            proc = _spawn_daemon(servedir)
            resumed = run_sweep(
                sweep, cache=cache, code="v",
                backend=_remote(servedir / "d.sock"), resume=True,
            )
            assert resumed.errors == 0
            assert [o.value for o in resumed.outcomes] == [
                o.value for o in clean.outcomes
            ]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def _seed_with_one_dkill(points, n):
    """A seed under which exactly one mid-campaign point draws dkill."""
    for seed in range(500):
        spec = ChaosSpec(dkill=1.0 / n, seed=seed)
        hits = [
            i for i, p in enumerate(points)
            if decide_connection(spec, p) == "dkill"
        ]
        if len(hits) == 1 and 2 <= hits[0] <= n - 4:
            return seed
    raise AssertionError("no seed with exactly one mid-sweep dkill")


def _children_of(pid):
    """Live child pids of ``pid`` (via /proc; the pool's workers)."""
    out = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue  # raced with process exit
        if int(stat.rsplit(")", 1)[1].split()[1]) == pid:
            out.append(int(entry.name))
    return out


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


class TestOrphanedWorkerHygiene:
    """Workers are *forked*, so a worker respawned while the daemon is
    serving inherits every daemon fd.  A later ``kill -9`` of the
    daemon must not leave those orphans keeping the listener half-alive
    (clients would connect to a zombie and hang mid-hello) or parked on
    a dead queue forever."""

    def test_hello_times_out_against_unresponsive_listener(self, servedir):
        # A bound-and-listening socket nobody ever accepts on: connect
        # succeeds into the backlog, the hello reply never comes.
        zombie_path = servedir / "zombie.sock"
        zombie = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        zombie.bind(str(zombie_path))
        zombie.listen(1)
        try:
            t0 = time.monotonic()
            with pytest.raises(DaemonUnreachable):
                ServeClient(
                    zombie_path, connect_retries=1, hello_timeout=0.3
                ).connect()
            assert time.monotonic() - t0 < 3.0
        finally:
            zombie.close()

    def test_healed_pool_survives_daemon_kill9_cleanly(
        self, servedir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKER_ORPHAN_POLL_S", "0.2")
        sweep = _sweep(24, name="heal", fn=_slow_point, sleep=0.15)
        cache = ResultCache(servedir / "cache")
        proc = _spawn_daemon(servedir)
        sock = servedir / "d.sock"
        killed = []

        def assassin(event):
            # murder one pool worker mid-campaign to force a heal: the
            # respawned worker is the fork that inherits live fds
            if not killed and event.index >= 1:
                workers = _children_of(proc.pid)
                if workers:
                    os.kill(workers[0], signal.SIGKILL)
                    killed.append(workers[0])

        try:
            result = run_sweep(
                sweep, cache=cache, code="v",
                backend=_remote(sock), progress=assassin, on_error="keep",
            )
            assert killed, "test never fired the worker kill"
            assert result.errors == 0  # the pool healed mid-campaign
            status = ServeClient(sock).status()
            assert status["respawns"] >= 1
            orphans_to_be = _children_of(proc.pid)
            assert orphans_to_be

            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

            # fail-fast: the respawned worker closed its copy of the
            # listener at fork, so a fresh client is refused instantly
            # instead of hanging in the hello handshake
            t0 = time.monotonic()
            with pytest.raises(DaemonUnreachable):
                ServeClient(
                    sock, connect_retries=1, hello_timeout=1.0
                ).connect()
            assert time.monotonic() - t0 < 5.0

            # hygiene: orphaned workers notice the reparenting and exit
            deadline = time.monotonic() + 10
            alive = orphans_to_be
            while alive and time.monotonic() < deadline:
                alive = [w for w in alive if _pid_alive(w)]
                time.sleep(0.1)
            assert not alive, f"orphaned workers survived: {alive}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
