"""Tests for platform models, calibration and named platforms."""

import numpy as np
import pytest

from repro.platform import (
    HardwareSpec,
    Platform,
    UT_CLUSTER,
    Worker,
    block_bytes,
    blocks_per_megabyte,
    calibrate,
    memory_mb_to_blocks,
    perturbed,
    table1_platform,
    table2_platform,
    ut_cluster_platform,
)
from repro.core.heterogeneous import chunk_sizes


class TestWorker:
    def test_valid_worker(self):
        wk = Worker(1, c=0.5, w=1.0, m=10)
        assert wk.label == "P1"

    def test_named_label(self):
        assert Worker(2, 1, 1, 5, name="fast").label == "fast"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(index=0, c=1, w=1, m=5),
            dict(index=1, c=0, w=1, m=5),
            dict(index=1, c=1, w=-1, m=5),
            dict(index=1, c=1, w=1, m=0),
        ],
    )
    def test_invalid_workers(self, kwargs):
        with pytest.raises(ValueError):
            Worker(**kwargs)


class TestPlatform:
    def test_homogeneous_builder(self):
        plat = Platform.homogeneous(4, c=1.0, w=2.0, m=30)
        assert plat.p == 4
        assert plat.is_homogeneous
        assert all(wk.c == 1.0 for wk in plat)

    def test_heterogeneous_builder(self):
        plat = Platform.heterogeneous([1, 2], [3, 4], [10, 20])
        assert not plat.is_homogeneous
        assert plat.worker(2).m == 20

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            Platform.heterogeneous([1], [2, 3], [10])

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            Platform(())

    def test_non_contiguous_indices_rejected(self):
        with pytest.raises(ValueError):
            Platform((Worker(1, 1, 1, 5), Worker(3, 1, 1, 5)))

    def test_worker_lookup_bounds(self):
        plat = Platform.homogeneous(2, 1, 1, 5)
        with pytest.raises(IndexError):
            plat.worker(0)
        with pytest.raises(IndexError):
            plat.worker(3)

    def test_subset_reindexes(self):
        plat = Platform.heterogeneous([1, 2, 3], [1, 2, 3], [10, 20, 30])
        sub = plat.subset([3, 1])
        assert sub.p == 2
        assert sub.worker(1).c == 3  # original P3 first
        assert sub.worker(2).c == 1

    def test_len_and_iter(self):
        plat = Platform.homogeneous(3, 1, 1, 5)
        assert len(plat) == 3
        assert [wk.index for wk in plat] == [1, 2, 3]

    def test_describe_mentions_all_workers(self):
        text = Platform.homogeneous(3, 1, 1, 5).describe()
        for label in ("P1", "P2", "P3"):
            assert label in text


class TestPerturbed:
    def test_jitter_changes_parameters_not_memory(self):
        base = Platform.homogeneous(4, c=1.0, w=2.0, m=50)
        rng = np.random.default_rng(0)
        jit = perturbed(base, rng, sigma=0.05)
        assert all(wk.m == 50 for wk in jit)
        assert any(wk.c != 1.0 for wk in jit)

    def test_sigma_zero_is_identity(self):
        base = Platform.homogeneous(2, c=1.0, w=2.0, m=50)
        jit = perturbed(base, np.random.default_rng(1), sigma=0.0)
        assert all(wk.c == 1.0 and wk.w == 2.0 for wk in jit)

    def test_negative_sigma_rejected(self):
        base = Platform.homogeneous(2, 1, 1, 5)
        with pytest.raises(ValueError):
            perturbed(base, np.random.default_rng(0), sigma=-0.1)

    def test_seeded_jitter_reproducible(self):
        base = Platform.homogeneous(3, 1.0, 1.0, 9)
        a = perturbed(base, np.random.default_rng(7))
        b = perturbed(base, np.random.default_rng(7))
        assert [w.c for w in a] == [w.c for w in b]


class TestCalibration:
    def test_block_bytes(self):
        assert block_bytes(80) == 80 * 80 * 8

    def test_blocks_per_megabyte(self):
        assert blocks_per_megabyte(80) == pytest.approx(1e6 / 51200)

    def test_memory_conversion_512mb(self):
        # 512 MB of 80x80 float64 blocks = 10000 blocks.
        assert memory_mb_to_blocks(512, 80) == 10000

    def test_memory_too_small_rejected(self):
        with pytest.raises(ValueError):
            memory_mb_to_blocks(0.01, 80)

    def test_calibrate_ut_cluster(self):
        c, w, m = calibrate(UT_CLUSTER)
        # 80x80 doubles over 100 Mb/s: 51200*8/100e6 s.
        assert c == pytest.approx(0.004096)
        assert w == pytest.approx(2 * 80**3 / 3.5e9)
        assert m == 10000

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            HardwareSpec(bandwidth_bps=0)
        with pytest.raises(ValueError):
            HardwareSpec(memory_mb=-1)

    def test_q_scaling_keeps_per_element_rates(self):
        c40, w40, _ = calibrate(HardwareSpec(q=40))
        c80, w80, _ = calibrate(HardwareSpec(q=80))
        # c scales with q^2, w with q^3.
        assert c80 / c40 == pytest.approx(4.0)
        assert w80 / w40 == pytest.approx(8.0)


class TestNamedPlatforms:
    def test_table1_chunk_sizes(self):
        assert chunk_sizes(table1_platform()) == [2, 2]

    def test_table2_chunk_sizes(self):
        assert chunk_sizes(table2_platform()) == [6, 18, 10]

    def test_table2_parameters(self):
        plat = table2_platform()
        assert [wk.c for wk in plat] == [2.0, 3.0, 5.0]
        assert [wk.w for wk in plat] == [2.0, 3.0, 1.0]

    def test_ut_cluster_default(self):
        plat = ut_cluster_platform(p=8)
        assert plat.p == 8
        assert plat.is_homogeneous
        assert plat.workers[0].m == 10000

    def test_ut_cluster_memory_sweep(self):
        low = ut_cluster_platform(p=2, memory_mb=132)
        assert low.workers[0].m == memory_mb_to_blocks(132, 80)


class TestHeterogeneousLengthMismatch:
    """Mismatched c/w/m lists must raise, never zip-truncate workers.

    All three mismatch directions are covered: a silently shorter
    platform would skew every downstream selection/makespan result
    (the Linpack-generator lesson: silent input-model assumptions
    corrupt results).
    """

    def test_short_c_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Platform.heterogeneous([1.0], [1.0, 2.0], [10, 20])

    def test_short_w_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Platform.heterogeneous([1.0, 2.0], [1.0], [10, 20])

    def test_short_m_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Platform.heterogeneous([1.0, 2.0], [1.0, 2.0], [10])

    def test_error_names_the_lengths(self):
        with pytest.raises(ValueError, match=r"len\(c\)=1, len\(w\)=2, len\(m\)=3"):
            Platform.heterogeneous([1.0], [1.0, 2.0], [10, 20, 30])

    def test_matched_lists_accepted(self):
        assert Platform.heterogeneous([1.0, 2.0], [1.0, 2.0], [10, 20]).p == 2
