"""Suite-wide fixtures.

Every test gets a throwaway sweep-cache location: code under test may
reach the default store through ``cached_call`` (e.g. the robustness
baselines) from this process *or* from forked worker pools, and
nothing a test does should read from — or leak into — the developer's
real ``~/.cache/repro-sweeps``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ trace fixtures from the current "
        "engines instead of diffing against them",
    )


@pytest.fixture(autouse=True)
def _hermetic_sweep_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("sweep-cache"))
    )
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
