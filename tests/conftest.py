"""Suite-wide fixtures.

Every test gets a throwaway sweep-cache location: code under test may
reach the default store through ``cached_call`` (e.g. the robustness
baselines) from this process *or* from forked worker pools, and
nothing a test does should read from — or leak into — the developer's
real ``~/.cache/repro-sweeps``.
"""

import sys

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ trace fixtures from the current "
        "engines instead of diffing against them",
    )


@pytest.fixture(autouse=True)
def _hermetic_sweep_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("sweep-cache"))
    )
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    yield
    # The robustness baselines are memoized at two levels: the lru_cache
    # sits *above* cached_call, so a warm in-process memo from one test
    # would let a later test skip the disk store its fresh
    # REPRO_CACHE_DIR was supposed to observe.  Keep the per-test cache
    # swap honest by dropping the in-process level with it.
    robustness = sys.modules.get("repro.experiments.robustness")
    if robustness is not None:
        robustness._baseline_makespan.cache_clear()
