"""Tests for workload definitions and the CLI entry point."""

import pytest

from repro.__main__ import main as cli_main
from repro.workloads import (
    FIG10_WORKLOADS,
    FIG12_BLOCK_SIZES,
    FIG13_MEMORY_MB,
    FIG13_WORKLOAD,
    Workload,
    fig10_workloads,
)


class TestWorkloads:
    def test_section83_shapes(self):
        shapes = [w.shape(80) for w in FIG10_WORKLOADS]
        assert (shapes[0].r, shapes[0].t, shapes[0].s) == (100, 100, 800)
        assert (shapes[1].r, shapes[1].t, shapes[1].s) == (200, 200, 1600)
        assert (shapes[2].r, shapes[2].t, shapes[2].s) == (100, 800, 800)

    def test_q40_doubles_grid(self):
        s40 = FIG10_WORKLOADS[0].shape(40)
        s80 = FIG10_WORKLOADS[0].shape(80)
        assert s40.r == 2 * s80.r

    def test_scaled_divides_dimensions(self):
        w = FIG10_WORKLOADS[0].scaled(4)
        assert w.n_a == 2000
        assert "/4" in w.name

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            FIG10_WORKLOADS[0].scaled(0)

    def test_shape_rounds_to_block_multiple(self):
        w = Workload("odd", 1001, 999, 1003)
        shape = w.shape(80)
        assert shape.n_a == 960
        assert shape.n_ab == 960

    def test_fig13_constants(self):
        assert 132.0 in FIG13_MEMORY_MB
        assert 512.0 in FIG13_MEMORY_MB
        assert FIG13_WORKLOAD.n_b == 64000

    def test_fig10_workloads_helper(self):
        plain = fig10_workloads()
        scaled = fig10_workloads(scale=8)
        assert plain[0].n_a == 8000
        assert scaled[0].n_a == 1000

    def test_block_size_constants(self):
        assert FIG12_BLOCK_SIZES == (40, 80)


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table2" in out

    def test_no_args_lists(self, capsys):
        assert cli_main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_fig04(self, capsys):
        assert cli_main(["fig04"]) == 0
        out = capsys.readouterr().out
        assert "Thrifty" in out and "Min-min" in out

    def test_runs_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "feasib" in capsys.readouterr().out.lower()
