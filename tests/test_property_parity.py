"""Property-based engine-tower checks (Hypothesis).

Randomized platforms, shapes, schedulers and scenario timelines drive
the two engine contracts:

* **fast vs DES** — byte-identical traces (same interval lists, same
  floats, same memory peaks), the contract ``tests/test_fast_parity.py``
  pins on curated cases;
* **model vs fast** — exact conserved counts (communicated blocks,
  update totals, enrolled workers) and a loose makespan envelope.  The
  tolerance here (50 %) is far looser than the per-regime envelopes of
  ``tests/test_model_envelope.py`` because Hypothesis explores
  degenerate corners (single-phase chunks, one worker, t=1) where the
  chunk-granularity model has almost nothing to average over.

Examples are seeded and derandomized so CI runs are reproducible; the
budget is deliberately small (the suite must stay tier-1 cheap).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.blocks import ProblemShape
from repro.engine import run_scheduler
from repro.platform import Platform
from repro.scenarios import Scenario
from repro.schedulers import (
    BMM,
    DDOML,
    HoLM,
    OBMM,
    ODDOML,
    OMMOML,
    ORROML,
)

ALL_SEVEN = (HoLM, ORROML, OMMOML, ODDOML, DDOML, BMM, OBMM)

#: Loose property-space envelope (see module docstring).
MODEL_TOL = 0.50

SETTINGS = settings(max_examples=30, deadline=None, derandomize=True)


@st.composite
def platforms(draw) -> Platform:
    p = draw(st.integers(min_value=1, max_value=5))
    rate = st.floats(
        min_value=0.1, max_value=2.0, allow_nan=False, allow_infinity=False
    )
    # Integer rates force massive event-time ties (the regime where
    # engine event-ordering differences would surface).
    if draw(st.booleans()):
        cs = [float(draw(st.integers(1, 3))) for _ in range(p)]
        ws = [float(draw(st.integers(1, 3))) for _ in range(p)]
    else:
        cs = [draw(rate) for _ in range(p)]
        ws = [draw(rate) for _ in range(p)]
    ms = [draw(st.sampled_from([21, 35, 60, 120])) for _ in range(p)]
    if draw(st.booleans()):
        return Platform.homogeneous(p, c=cs[0], w=ws[0], m=ms[0])
    return Platform.heterogeneous(cs, ws, ms)


@st.composite
def shapes(draw) -> ProblemShape:
    return ProblemShape(
        r=draw(st.integers(1, 6)),
        s=draw(st.integers(1, 6)),
        t=draw(st.integers(1, 6)),
        q=draw(st.sampled_from([2, 4])),
    )


scheduler_classes = st.sampled_from(ALL_SEVEN)


@st.composite
def scenario_knobs(draw) -> dict:
    """Scenario shape drawn platform-independently (built later)."""
    return {
        "slow_worker": draw(st.integers(1, 3)),
        "slow_at": draw(st.floats(min_value=1.0, max_value=40.0)),
        "slow_factor": draw(st.floats(min_value=1.5, max_value=10.0)),
        "brownout": draw(st.booleans()),
        "brown_at": draw(st.floats(min_value=2.0, max_value=30.0)),
        "brown_factor": draw(st.floats(min_value=1.5, max_value=4.0)),
    }


def build_scenario(platform: Platform, knobs: dict) -> Scenario:
    scenario = Scenario.stationary(platform)
    widx = min(knobs["slow_worker"], platform.p)
    scenario = scenario.with_slowdown(
        widx, knobs["slow_at"], knobs["slow_factor"]
    )
    if knobs["brownout"]:
        scenario = scenario.with_bandwidth_step(
            knobs["brown_at"], knobs["brown_factor"]
        )
    return scenario


class TestFastMatchesDES:
    @SETTINGS
    @given(
        platform=platforms(),
        shape=shapes(),
        scheduler_cls=scheduler_classes,
        two_port=st.booleans(),
    )
    def test_stationary_traces_identical(
        self, platform, shape, scheduler_cls, two_port
    ):
        des = run_scheduler(
            scheduler_cls(), platform, shape, engine="des", two_port=two_port
        )
        fast = run_scheduler(
            scheduler_cls(), platform, shape, engine="fast", two_port=two_port
        )
        assert des.comms == fast.comms
        assert des.computes == fast.computes
        assert des.memory_peak == fast.memory_peak

    @SETTINGS
    @given(
        platform=platforms(),
        shape=shapes(),
        scheduler_cls=scheduler_classes,
        knobs=scenario_knobs(),
    )
    def test_scenario_traces_identical(
        self, platform, shape, scheduler_cls, knobs
    ):
        scenario = build_scenario(platform, knobs)
        des = run_scheduler(
            scheduler_cls(), platform, shape, engine="des", scenario=scenario
        )
        fast = run_scheduler(
            scheduler_cls(), platform, shape, engine="fast", scenario=scenario
        )
        assert des.comms == fast.comms
        assert des.computes == fast.computes
        assert des.memory_peak == fast.memory_peak


class TestModelWithinEnvelope:
    @SETTINGS
    @given(
        platform=platforms(),
        shape=shapes(),
        scheduler_cls=scheduler_classes,
        two_port=st.booleans(),
    )
    def test_counts_exact_and_makespan_enveloped(
        self, platform, shape, scheduler_cls, two_port
    ):
        fast = run_scheduler(
            scheduler_cls(), platform, shape, two_port=two_port
        )
        estimate = run_scheduler(
            scheduler_cls(), platform, shape, two_port=two_port,
            engine="model",
        )
        assert estimate.total_updates == shape.total_updates
        comm_blocks = sum(c.blocks for c in fast.comms)
        assert estimate.comm_blocks == comm_blocks
        assert estimate.enrolled_workers == fast.enrolled_workers
        ref = fast.work_makespan
        assert abs(estimate.makespan - ref) <= MODEL_TOL * ref

    @SETTINGS
    @given(
        platform=platforms(),
        shape=shapes(),
        scheduler_cls=scheduler_classes,
        knobs=scenario_knobs(),
    )
    def test_scenario_counts_conserved(
        self, platform, shape, scheduler_cls, knobs
    ):
        scenario = build_scenario(platform, knobs)
        estimate = run_scheduler(
            scheduler_cls(), platform, shape, scenario=scenario,
            engine="model",
        )
        assert estimate.total_updates == shape.total_updates
        assert estimate.makespan > 0.0
        assert estimate.check_invariants() is None
