"""Tests for the heterogeneous execution scheduler (repro.schedulers.hetero)."""

import pytest

from repro.blocks import ProblemShape, make_product_instance, verify_product
from repro.core.heterogeneous import chunk_sizes, global_selection
from repro.engine import run_scheduler
from repro.platform import Platform, table2_platform
from repro.schedulers.hetero import HeteroIncremental, allocate_columns


class TestAllocateColumns:
    def test_exact_column_total(self):
        plat = table2_platform()
        shape = ProblemShape(r=20, s=50, t=4, q=2)
        sel = global_selection(plat, shape.r, shape.s, shape.t)
        cols = allocate_columns(plat, shape, sel)
        assert sum(cols) == shape.s
        assert all(c >= 0 for c in cols)

    def test_overshoot_trimmed_from_inefficient_workers(self):
        plat = table2_platform()
        shape = ProblemShape(r=18, s=19, t=2, q=2)
        sel = global_selection(plat, shape.r, shape.s, shape.t)
        cols = allocate_columns(plat, shape, sel)
        assert sum(cols) == 19


class TestHeteroIncremental:
    @pytest.mark.parametrize("variant", ["global", "local", "lookahead"])
    def test_variants_compute_the_product(self, variant):
        plat = table2_platform()
        shape = ProblemShape(r=12, s=24, t=3, q=2)
        a, b, c0 = make_product_instance(shape, seed=5)
        c = c0.copy()
        tr = run_scheduler(HeteroIncremental(variant), plat, shape, data=(a, b, c))
        assert verify_product(a, b, c0, c)
        tr.check_invariants()

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            HeteroIncremental("psychic")

    def test_memory_respected_per_worker(self):
        plat = table2_platform()
        shape = ProblemShape(r=24, s=36, t=3, q=2)
        tr = run_scheduler(HeteroIncremental("global"), plat, shape)
        mus = chunk_sizes(plat)
        for widx, peak in tr.memory_peak.items():
            assert peak <= plat.worker(widx).m
            assert peak <= mus[widx - 1] ** 2 + 4 * mus[widx - 1]

    def test_selection_cached(self):
        sched = HeteroIncremental("global")
        plat = table2_platform()
        shape = ProblemShape(r=12, s=24, t=3, q=2)
        run_scheduler(sched, plat, shape)
        assert sched.last_selection is not None
        assert sum(sched.last_selection.chunks_per_worker) == len(
            sched.last_selection.sequence
        )

    def test_fast_worker_gets_most_columns(self):
        """On Table 2 the selection sends most work to P2 and P3 per
        the steady-state rates; the executed allocation follows."""
        plat = table2_platform()
        shape = ProblemShape(r=36, s=72, t=4, q=2)
        sched = HeteroIncremental("global")
        tr = run_scheduler(sched, plat, shape)
        sel = sched.last_selection
        cols = allocate_columns(plat, shape, sel)
        # P1 (c=2, w=2, mu=6) has the worst 2c/(mu*w) among enrolled...
        # steady-state: x = (1/2, 1/3, 5/9) -> P3 outworks P2 per column?
        # The robust claim: nobody gets everything, all enrolled get some.
        assert sorted(tr.enrolled_workers) == [1, 2, 3]
        assert all(c > 0 for c in cols)

    def test_on_homogeneous_platform_degenerates_gracefully(self):
        plat = Platform.homogeneous(3, c=0.5, w=0.5, m=21)
        shape = ProblemShape(r=6, s=9, t=2, q=2)
        a, b, c0 = make_product_instance(shape, seed=9)
        c = c0.copy()
        run_scheduler(HeteroIncremental("local"), plat, shape, data=(a, b, c))
        assert verify_product(a, b, c0, c)
