"""Batched model evaluation: bitwise equality with the scalar engine.

The batched model engine (:mod:`repro.engine.model_batch`) groups sweep
points by structural signature and replays the scalar estimator's
3-event recurrence as numpy rows.  Its contract is stronger than the
fast batch engine's byte-parity on traces: every
:class:`~repro.engine.model.ModelEstimate` field — makespan, port
clocks, per-worker busy times, counted quantities, memory peaks — must
be **float-bitwise identical** to scalar :func:`~repro.engine.run_model`
on every point, because downstream consumers (the validated error
envelope, prescreen scores, cache keys) tolerate zero drift.

Also covered here: the sweep-runner interchangeability property — a
cache warmed by the batched model path serves a scalar run entirely
from cache and vice versa (same keys, same bytes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import ProblemShape
from repro.engine import BatchItem, run_model, run_model_batch, run_scheduler
from repro.engine.model import ModelEngineUnsupported
from repro.platform import Platform, perturbed, scaled_bandwidth
from repro.platform.model import Worker
from repro.runner import ResultCache, Sweep, run_sweep
from repro.schedulers import SECTION8_SCHEDULERS, section8_scheduler
ALGOS = tuple(SECTION8_SCHEDULERS)


def _estimates_equal(got, want, context=""):
    """Assert two ModelEstimates are field-for-field bitwise equal."""
    assert got.makespan == want.makespan, f"{context}: makespan"
    assert got.comm_blocks == want.comm_blocks, f"{context}: comm_blocks"
    assert got.total_updates == want.total_updates, f"{context}: updates"
    assert got.port_busy == want.port_busy, f"{context}: port_busy"
    assert got.worker_busy == want.worker_busy, f"{context}: worker_busy"
    assert got.worker_updates == want.worker_updates, f"{context}: per-worker"
    assert got.peak_blocks == want.peak_blocks, f"{context}: peaks"
    assert got.two_port == want.two_port, f"{context}: two_port"


def _assert_batch_matches_scalar(items, min_group=2, counters=None):
    results = run_model_batch(items, min_group=min_group, counters=counters)
    assert len(results) == len(items)
    for i, (item, got) in enumerate(zip(items, results)):
        want = run_model(
            item.scheduler(), item.platform, item.shape,
            two_port=item.two_port, check_memory=item.check_memory,
        )
        _estimates_equal(got, want, context=f"item {i}")
    return results


#: Small stationary shape: enough chunks per worker to exercise the
#: full fill/bulk/C-return recurrence while keeping the scalar
#: reference runs cheap (the 10x speed claim lives in benchmarks/).
SHAPE = ProblemShape(r=14, s=36, t=40)


def _ladder(algo, n=48, p=8, two_port=False, shape=None):
    """A uniform bandwidth ladder — the vectorizable hot path."""
    base = Platform.homogeneous(p, c=1.0, w=0.5, m=24)
    shape = shape or SHAPE
    return [
        BatchItem(
            scheduler=(lambda a=algo: section8_scheduler(a)),
            platform=scaled_bandwidth(base, 1.0 + 0.0002 * i),
            shape=shape,
            two_port=two_port,
            engine="model",
        )
        for i in range(n)
    ]


class TestBitwiseEquality:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_uniform_ladder_all_schedulers(self, algo):
        counters: dict = {}
        _assert_batch_matches_scalar(_ladder(algo), counters=counters)
        assert counters["vectorized"] + counters["scalar"] == 48
        # The dispatch-order lock may drop divergent rows to the scalar
        # fallback, but a uniform ladder must vectorize *some* rows for
        # every rate-independent launch structure.
        if algo not in ("BMM", "DDOML"):
            assert counters["vectorized"] > 0, algo

    @pytest.mark.parametrize("algo", ("HoLM", "OBMM", "ODDOML"))
    def test_two_port_ladder(self, algo):
        _assert_batch_matches_scalar(_ladder(algo, n=16, two_port=True))

    def test_jittered_platforms(self):
        """Non-uniform batches: perturbed rates, mixed memory."""
        rng = np.random.default_rng(7)
        base = Platform.homogeneous(6, c=1.0, w=0.5, m=24)
        shape = SHAPE
        items = [
            BatchItem(
                scheduler=(lambda a=algo: section8_scheduler(a)),
                platform=perturbed(base, rng, 0.02),
                shape=shape,
                engine="model",
            )
            for algo in ("HoLM", "ODDOML", "OBMM")
            for _ in range(6)
        ]
        _assert_batch_matches_scalar(items)

    def test_mixed_shapes_and_memory(self):
        shapes = [ProblemShape(r=10, s=12, t=30), ProblemShape(r=8, s=8, t=20)]
        items = [
            BatchItem(
                scheduler=(lambda: section8_scheduler("ORROML")),
                platform=Platform.homogeneous(4, c=1.0, w=0.5, m=m),
                shape=shape,
                engine="model",
            )
            for shape in shapes
            for m in (21, 24, 35)
            for _ in range(2)
        ]
        _assert_batch_matches_scalar(items)

    def test_heterogeneous_platform_stays_scalar_but_exact(self):
        """Per-worker rate spreads break uniform grouping assumptions;
        correctness (not speed) is the contract there."""
        workers = tuple(
            Worker(index=i, c=1.0 + 0.3 * i, w=0.5 + 0.1 * i, m=24)
            for i in range(1, 5)
        )
        plat = Platform(workers=workers, name="hetero")
        shape = SHAPE
        items = [
            BatchItem(
                scheduler=(lambda: section8_scheduler("ODDOML")),
                platform=plat, shape=shape, engine="model",
            )
            for _ in range(4)
        ]
        _assert_batch_matches_scalar(items)

    def test_unsupported_scheduler_falls_back_per_item(self):
        """A group whose scheduler the model tier rejects must surface
        the same ModelEngineUnsupported the scalar path raises — no
        silent fallback tier appears just because dispatch was batched."""
        from repro.schedulers import HoLM

        class RawProcess(HoLM):
            name = "RawProcess"

            def launch(self, engine):
                def agent():
                    yield

                engine.env.process(agent(), name="raw")

        shape = ProblemShape(r=4, s=4, t=2, q=2)
        plat = Platform.homogeneous(2, c=1.0, w=1.0, m=200)
        items = [
            BatchItem(
                scheduler=RawProcess, platform=plat, shape=shape,
                engine="model",
            )
            for _ in range(3)
        ]
        with pytest.raises(ModelEngineUnsupported):
            run_model_batch(items)

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        r=st.integers(min_value=6, max_value=14),
        s=st.integers(min_value=6, max_value=14),
        t=st.integers(min_value=10, max_value=40),
        p=st.integers(min_value=2, max_value=10),
        m=st.sampled_from([15, 21, 24, 35, 48]),
        c=st.floats(min_value=0.2, max_value=3.0,
                    allow_nan=False, allow_infinity=False),
        w=st.floats(min_value=0.1, max_value=2.0,
                    allow_nan=False, allow_infinity=False),
        algo=st.sampled_from(ALGOS),
        n=st.integers(min_value=2, max_value=8),
        step=st.floats(min_value=0.0, max_value=0.01,
                       allow_nan=False, allow_infinity=False),
    )
    def test_property_stationary_points_bitwise(
        self, r, s, t, p, m, c, w, algo, n, step
    ):
        """Property: any stationary homogeneous ladder is bitwise equal
        between the batched and scalar model engines — every field."""
        base = Platform.homogeneous(p, c=c, w=w, m=m)
        shape = ProblemShape(r=r, s=s, t=t)
        items = [
            BatchItem(
                scheduler=(lambda a=algo: section8_scheduler(a)),
                platform=scaled_bandwidth(base, 1.0 + step * i),
                shape=shape,
                engine="model",
            )
            for i in range(n)
        ]
        _assert_batch_matches_scalar(items)


# ---------------------------------------------------------------------------
# Sweep-runner interchangeability: batched-path keys == scalar-path keys
# ---------------------------------------------------------------------------


def _model_point(params):
    """Pure model-engine point function (importable, cacheable)."""
    plat = scaled_bandwidth(
        Platform.homogeneous(params["p"], c=1.0, w=0.5, m=24),
        params["factor"],
    )
    shape = ProblemShape(r=10, s=12, t=30)
    trace = run_scheduler(
        section8_scheduler(params["algorithm"]), plat, shape, engine="model"
    )
    return {"factor": params["factor"], "makespan": trace.makespan}


def _model_batch_fn(points):
    """Batched twin of :func:`_model_point` via the engine batch layer."""
    from repro.experiments.batching import evaluate_batch

    def item(params):
        return BatchItem(
            scheduler=(lambda: section8_scheduler(params["algorithm"])),
            platform=scaled_bandwidth(
                Platform.homogeneous(params["p"], c=1.0, w=0.5, m=24),
                params["factor"],
            ),
            shape=ProblemShape(r=10, s=12, t=30),
            engine=params.get("engine", "model"),
        )

    def row(params, trace):
        return {"factor": params["factor"], "makespan": trace.makespan}

    return evaluate_batch(points, item, row)


def _model_sweep(n=12):
    return Sweep(
        name="modelgrid",
        run_fn=_model_point,
        points=tuple(
            {"algorithm": "OBMM", "p": 8, "factor": 1.0 + 0.0002 * i,
             "engine": "model"}
            for i in range(n)
        ),
        batch_fn=_model_batch_fn,
    )


class TestCacheKeyInterchangeability:
    def test_batched_cold_scalar_warm(self, tmp_path):
        """A batch-resolved cache serves a scalar run entirely warm."""
        cache = ResultCache(tmp_path)
        cold = run_sweep(_model_sweep(), cache=cache, code="v", batch=True)
        assert cold.misses == len(cold.outcomes)
        assert all(o.batch for o in cold.outcomes)
        warm = run_sweep(
            _model_sweep(), cache=cache, code="v", batch=False, resume=True
        )
        assert warm.hits == len(warm.outcomes) and warm.misses == 0
        assert warm.rows == cold.rows

    def test_scalar_cold_batched_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(_model_sweep(), cache=cache, code="v", batch=False)
        assert not any(o.batch for o in cold.outcomes)
        warm = run_sweep(
            _model_sweep(), cache=cache, code="v", batch=True, resume=True
        )
        assert warm.hits == len(warm.outcomes) and warm.misses == 0
        assert warm.rows == cold.rows

    def test_batched_and_scalar_keys_identical(self, tmp_path):
        a = run_sweep(
            _model_sweep(), cache=ResultCache(tmp_path / "a"),
            code="v", batch=True,
        )
        b = run_sweep(
            _model_sweep(), cache=ResultCache(tmp_path / "b"),
            code="v", batch=False,
        )
        assert [o.key for o in a.outcomes] == [o.key for o in b.outcomes]
        assert a.rows == b.rows

    def test_batch_groups_and_shards_reported(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_sweep(_model_sweep(), cache=cache, code="v", batch=True)
        assert result.batch_groups >= 1
        keys = {o.key for o in result.outcomes}
        assert result.shards == len({k[:2] for k in keys})
        scalar = run_sweep(
            _model_sweep(), cache=ResultCache(tmp_path / "s"),
            code="v", batch=False,
        )
        assert scalar.batch_groups == 0
        assert scalar.shards == result.shards  # same keys either way
