"""Batched sweep dispatch (ISSUE 9): runner semantics + backend parity.

Covers the runner half of the batched-evaluation contract:

* every ported experiment produces **byte-identical tables** with
  ``batch=True`` across all four execution backends (serial / process /
  persistent / remote) vs the scalar per-point reference;
* a failed group falls back to per-point scalar dispatch, so retries
  and quarantine records stay per-point (the ISSUE's RetryPolicy fix);
* cache keys are untouched — batch-resolved entries warm-resume scalar
  runs and vice versa — while ``"batch": true`` provenance lands in the
  manifest, survives compaction, and surfaces in ``ResultCache.stats``;
* prescreen stays batch-oblivious and unbatchable functions (closures)
  degrade silently to the scalar path.
"""

import tempfile
from dataclasses import replace
from pathlib import Path

import pytest

from repro.runner import (
    ResultCache,
    RetryPolicy,
    Sweep,
    run_sweep,
)

# ---------------------------------------------------------------------------
# module-level point functions (importable: process/persistent/remote pools
# and the _token_for gate all require real module attributes)
# ---------------------------------------------------------------------------


def _square(params):
    return {"x": params["x"], "square": params["x"] ** 2}


def _square_batch(points):
    return [_square(p) for p in points]


def _square_batch_poisoned(points):
    """Raises whenever the group contains the poison point."""
    if any(p["x"] == 3 for p in points):
        raise RuntimeError("poisoned group")
    return [_square(p) for p in points]


def _square_batch_short(points):
    """Wrong cardinality: the runner must treat this as a failed group."""
    return [_square(p) for p in points][:-1]


def _poison_scalar(params):
    if params["x"] == 3:
        raise RuntimeError("permanent scalar failure")
    return _square(params)


def _sweep(n=8, batch_fn=_square_batch, run_fn=_square, name="batched"):
    return Sweep(
        name=name, run_fn=run_fn,
        points=tuple({"x": x} for x in range(n)),
        batch_fn=batch_fn,
    )


@pytest.fixture
def daemon():
    """An in-process serve daemon for the remote backend."""
    from repro.service.daemon import ServeConfig, ServeDaemon

    tmp = Path(tempfile.mkdtemp(prefix="repro-batch-", dir="/tmp"))
    d = ServeDaemon(ServeConfig(
        socket_path=str(tmp / "s.sock"),
        cache_dir=str(tmp / "cache"),
        jobs=2,
        quiet=True,
    ))
    d.start()
    yield d
    d.stop()
    import shutil

    shutil.rmtree(tmp, ignore_errors=True)


def _backend(spec, daemon):
    if spec == "remote":
        from repro.runner import RemoteBackend

        return RemoteBackend(jobs=2, socket_path=str(daemon.socket_path))
    return spec


BACKENDS = ("serial", "process", "persistent", "remote")


class TestBatchDispatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_results_identical_to_scalar(self, backend, daemon):
        reference = run_sweep(_sweep(), backend="serial", batch=False)
        exec_backend = _backend(backend, daemon)
        try:
            result = run_sweep(_sweep(), jobs=2, backend=exec_backend)
        finally:
            if backend == "remote":
                exec_backend.close()
        assert result.rows == reference.rows
        assert all(o.batch for o in result.outcomes)
        assert not any(o.batch for o in reference.outcomes)

    def test_no_batch_flag_restores_scalar_dispatch(self):
        result = run_sweep(_sweep(), jobs=2, batch=False)
        assert not any(o.batch for o in result.outcomes)
        assert result.rows == run_sweep(_sweep(), jobs=2).rows

    def test_sweep_without_batch_fn_runs_scalar(self):
        result = run_sweep(_sweep(batch_fn=None), jobs=2)
        assert not any(o.batch for o in result.outcomes)

    def test_unimportable_batch_fn_degrades_silently(self):
        """A closure can't cross process boundaries: the token gate must
        route the whole sweep through the scalar path, not crash."""
        sweep = _sweep(batch_fn=lambda pts: [_square(p) for p in pts])
        result = run_sweep(sweep, jobs=2)
        assert result.rows == run_sweep(_sweep(), batch=False).rows
        assert not any(o.batch for o in result.outcomes)

    def test_failed_group_falls_back_to_scalar_per_point(self):
        """Satellite regression: a batch failure costs the group its
        fast path, nothing else — every point still resolves via the
        ordinary scalar dispatch (with its per-point retry budget)."""
        result = run_sweep(_sweep(batch_fn=_square_batch_poisoned), jobs=1)
        assert result.rows == run_sweep(_sweep(), batch=False).rows
        assert not any(o.batch for o in result.outcomes)
        assert all(o.status == "ok" for o in result.outcomes)

    def test_wrong_cardinality_group_treated_as_failed(self):
        result = run_sweep(_sweep(batch_fn=_square_batch_short), jobs=1)
        assert result.rows == run_sweep(_sweep(), batch=False).rows
        assert not any(o.batch for o in result.outcomes)

    def test_quarantine_stays_per_point(self, tmp_path):
        """The ISSUE's RetryPolicy fix: after a failed batch, only the
        genuinely-poisoned point is retried to exhaustion and
        quarantined; its groupmates succeed scalar."""
        cache = ResultCache(tmp_path)
        sweep = _sweep(
            batch_fn=_square_batch_poisoned, run_fn=_poison_scalar
        )
        result = run_sweep(
            sweep, jobs=1, cache=cache, on_error="keep",
            retry=RetryPolicy(retries=1, backoff=0.0),
        )
        bad = [o for o in result.outcomes if o.status == "error"]
        assert [o.params["x"] for o in bad] == [3]
        assert sum(o.status == "ok" for o in result.outcomes) == 7
        quarantined = cache.quarantined(sweep.name)
        assert len(quarantined) == 1
        (record,) = quarantined.values()
        assert record["params"]["x"] == 3

    def test_batch_outcomes_emit_in_declaration_order(self):
        progress_order = []
        run_sweep(
            _sweep(), jobs=2,
            progress=lambda pr: progress_order.append(pr.params["x"]),
        )
        assert progress_order == list(range(8))


class TestBatchCacheProvenance:
    def test_cache_keys_identical_to_scalar(self, tmp_path):
        """A batch-warmed cache must serve a scalar resume and vice
        versa: provenance is advisory, keys don't change."""
        cache = ResultCache(tmp_path / "a")
        batched = run_sweep(_sweep(), jobs=2, cache=cache)
        assert all(o.batch for o in batched.outcomes)
        resumed = run_sweep(
            _sweep(), jobs=2, cache=cache, resume=True, batch=False
        )
        assert all(o.cached for o in resumed.outcomes)
        assert resumed.rows == batched.rows

        cache2 = ResultCache(tmp_path / "b")
        scalar = run_sweep(_sweep(), jobs=2, cache=cache2, batch=False)
        resumed2 = run_sweep(_sweep(), jobs=2, cache=cache2, resume=True)
        assert all(o.cached for o in resumed2.outcomes)
        assert resumed2.rows == scalar.rows

    def test_stats_report_batch_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_sweep(), jobs=2, cache=cache)
        run_sweep(
            _sweep(name="scalar-only"), jobs=2, cache=cache, batch=False
        )
        stats = cache.stats()
        assert stats.batch_entries == 8
        assert dict(stats.batch_per_sweep) == {"batched": 8}
        # per_sweep keeps its historical 3-tuple shape
        assert all(len(entry) == 3 for entry in stats.per_sweep)

    def test_provenance_survives_compaction(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_sweep(), jobs=2, cache=cache)
        cache.compact("batched")
        assert cache.stats().batch_entries == 8

    def test_scalar_overwrite_clears_provenance(self, tmp_path):
        """Re-putting a key without the batch stamp folds it back to
        scalar provenance (last writer wins, like the rest of the
        manifest fold)."""
        cache = ResultCache(tmp_path)
        cache.put("s", "k1", {"x": 1}, {"v": 1}, batch=True)
        cache.put("s", "k2", {"x": 2}, {"v": 2}, batch=True)
        assert cache.stats().batch_entries == 2
        cache.put("s", "k1", {"x": 1}, {"v": 1})
        assert cache.stats().batch_entries == 1


class TestBatchPrescreenInteraction:
    def test_prescreen_is_batch_oblivious(self, monkeypatch):
        """prescreen_sweep narrows points but keeps batch_fn, so the
        surviving shortlist still batches."""
        from repro.runner import prescreen_sweep

        sweep = _sweep()
        screened = prescreen_sweep(
            sweep, keep=4, score=lambda params, row: row["square"],
        )
        assert screened.sweep.batch_fn is sweep.batch_fn
        result = run_sweep(screened.sweep, jobs=2)
        assert len(result.rows) == 4
        assert all(o.batch for o in result.outcomes)


SMOKE_EXPERIMENTS = ("fig10", "fig11", "table1", "robustness")


def _experiment_sweep(name):
    if name == "fig10":
        from repro.experiments import fig10

        return fig10.sweep(scale=8)
    if name == "fig11":
        from repro.experiments import fig11

        return fig11.sweep(runs=2, scale=16)
    if name == "table1":
        from repro.experiments import table1

        return table1.sweep()
    from repro.experiments import robustness

    return robustness.sweep(scale=8, kinds=("drift",), severities=(0.5,))


class TestExperimentBackendParity:
    """Byte-identical tables for every ported experiment, all backends."""

    @pytest.mark.parametrize("experiment", SMOKE_EXPERIMENTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_tables_byte_identical(self, experiment, backend, daemon):
        reference = run_sweep(
            _experiment_sweep(experiment), backend="serial", batch=False
        )
        exec_backend = _backend(backend, daemon)
        try:
            result = run_sweep(
                _experiment_sweep(experiment), jobs=2, backend=exec_backend
            )
        finally:
            if backend == "remote":
                exec_backend.close()
        assert result.rows == reference.rows, (experiment, backend)

    def test_fig10_bandwidth_axis_batches_and_matches(self):
        """The bandwidth-scale axis (the benchmark's sweep shape) rides
        the vectorized path and stays byte-identical."""
        from repro.experiments import fig10

        scales = [1.0 + 0.002 * i for i in range(4)]
        sweep = fig10.sweep(scale=8, bandwidth_scales=scales)
        batched = run_sweep(sweep, jobs=2)
        reference = run_sweep(
            replace(sweep, batch_fn=None), jobs=2, batch=False
        )
        assert batched.rows == reference.rows
        assert all(o.batch for o in batched.outcomes)
