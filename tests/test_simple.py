"""Tests for the Section 3 simplified model and its algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simple import (
    Send,
    SimpleInstance,
    alternating_greedy,
    alternating_sequence,
    brute_force_best,
    evaluate_schedule,
    greedy_task_count,
    min_min,
    thrifty,
)


class TestModel:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            SimpleInstance(r=0, s=1, p=1, c=1, w=1)
        with pytest.raises(ValueError):
            SimpleInstance(r=1, s=1, p=1, c=0, w=1)

    def test_send_validation(self):
        with pytest.raises(ValueError):
            Send(1, "C", 1)
        with pytest.raises(ValueError):
            Send(0, "A", 1)

    def test_single_worker_single_task(self):
        inst = SimpleInstance(r=1, s=1, p=1, c=2.0, w=3.0)
        res = evaluate_schedule(inst, [Send(1, "A", 1), Send(1, "B", 1)])
        # Two sends (4.0), task starts at 4.0, done at 7.0.
        assert res.makespan == 7.0
        assert res.tasks_done == 1
        assert res.comm_volume == 2

    def test_tasks_claimed_at_file_arrival(self):
        inst = SimpleInstance(r=2, s=1, p=1, c=1.0, w=1.0)
        res = evaluate_schedule(
            inst, [Send(1, "A", 1), Send(1, "A", 2), Send(1, "B", 1)]
        )
        # B1 arrives at t=3 enabling both tasks: 3+1+1 = 5.
        assert res.makespan == 5.0
        assert res.task_worker == {(1, 1): 1, (2, 1): 1}

    def test_duplicate_file_rejected(self):
        inst = SimpleInstance(r=1, s=1, p=1, c=1, w=1)
        with pytest.raises(ValueError):
            evaluate_schedule(inst, [Send(1, "A", 1), Send(1, "A", 1)])

    def test_unknown_worker_rejected(self):
        inst = SimpleInstance(r=1, s=1, p=1, c=1, w=1)
        with pytest.raises(ValueError):
            evaluate_schedule(inst, [Send(2, "A", 1)])

    def test_incomplete_schedule_rejected(self):
        inst = SimpleInstance(r=2, s=1, p=1, c=1, w=1)
        with pytest.raises(ValueError):
            evaluate_schedule(inst, [Send(1, "A", 1), Send(1, "B", 1)])

    def test_incomplete_allowed_when_flagged(self):
        inst = SimpleInstance(r=2, s=1, p=1, c=1, w=1)
        res = evaluate_schedule(
            inst, [Send(1, "A", 1), Send(1, "B", 1)], require_complete=False
        )
        assert res.tasks_done == 1

    def test_index_bounds_checked(self):
        inst = SimpleInstance(r=2, s=2, p=1, c=1, w=1)
        with pytest.raises(ValueError):
            evaluate_schedule(inst, [Send(1, "A", 3)])
        with pytest.raises(ValueError):
            evaluate_schedule(inst, [Send(1, "B", 3)])

    def test_two_workers_parallel_compute(self):
        inst = SimpleInstance(r=2, s=1, p=2, c=1.0, w=10.0)
        sched = [
            Send(1, "A", 1),
            Send(1, "B", 1),  # task (1,1) on P1 at t=2
            Send(2, "A", 2),
            Send(2, "B", 1),  # task (2,1) on P2 at t=4
        ]
        res = evaluate_schedule(inst, sched)
        assert res.makespan == 14.0  # P2 finishes at 4+10
        assert res.finish_times == (12.0, 14.0)


class TestGreedyTaskCount:
    @given(x=st.integers(0, 30), r=st.integers(1, 12), s=st.integers(1, 12))
    @settings(max_examples=150, deadline=None)
    def test_matches_exhaustive(self, x, r, s):
        best = 0
        for y in range(0, min(x, r) + 1):
            z = min(x - y, s)
            best = max(best, y * z)
        assert greedy_task_count(x, r, s) == best

    def test_alternation_formula_unclipped(self):
        # ceil(x/2)*floor(x/2) when the grid is large enough.
        assert greedy_task_count(5, 10, 10) == 6
        assert greedy_task_count(6, 10, 10) == 9

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError):
            greedy_task_count(-1, 2, 2)


class TestAlternatingGreedy:
    def test_sequence_covers_all_files(self):
        seq = alternating_sequence(3, 2)
        assert len(seq) == 5
        assert {(s.kind, s.index) for s in seq} == {
            ("A", 1), ("A", 2), ("A", 3), ("B", 1), ("B", 2),
        }

    def test_alternation_prefix_property(self):
        """Proposition 1: after x sends, y = ceil(x/2), z = floor(x/2)
        (up to exhaustion), maximizing enabled tasks at every prefix."""
        r, s = 5, 5
        seq = alternating_sequence(r, s)
        for x in range(1, len(seq) + 1):
            y = sum(1 for snd in seq[:x] if snd.kind == "A")
            z = x - y
            assert y * z == greedy_task_count(x, r, s)

    def test_requires_single_worker(self):
        with pytest.raises(ValueError):
            alternating_greedy(SimpleInstance(r=2, s=2, p=2, c=1, w=1))

    @given(
        r=st.integers(1, 3),
        s=st.integers(1, 3),
        c=st.sampled_from([1.0, 2.0, 5.0]),
        w=st.sampled_from([1.0, 3.0, 8.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_proposition1_optimal_single_worker(self, r, s, c, w):
        """Alternating greedy matches the brute-force optimum (p=1)."""
        inst = SimpleInstance(r=r, s=s, p=1, c=c, w=w)
        alt = alternating_greedy(inst)
        best = brute_force_best(inst)
        assert alt.makespan == pytest.approx(best.makespan)


class TestGreedyHeuristics:
    def test_fig4a_minmin_wins(self):
        inst = SimpleInstance(r=3, s=3, p=2, c=4.0, w=7.0)
        assert min_min(inst).makespan < thrifty(inst).makespan

    def test_fig4b_thrifty_wins(self):
        inst = SimpleInstance(r=6, s=3, p=2, c=8.0, w=9.0)
        assert thrifty(inst).makespan < min_min(inst).makespan

    def test_neither_heuristic_is_optimal(self):
        """Section 3's conclusion, certified against brute force on (a)."""
        inst = SimpleInstance(r=3, s=3, p=2, c=4.0, w=7.0)
        best = brute_force_best(inst).makespan
        assert thrifty(inst).makespan > best  # Thrifty suboptimal here

    @given(
        r=st.integers(1, 4),
        s=st.integers(1, 4),
        p=st.integers(1, 3),
        c=st.sampled_from([0.5, 2.0, 8.0]),
        w=st.sampled_from([1.0, 7.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_heuristics_complete_all_tasks(self, r, s, p, c, w):
        inst = SimpleInstance(r=r, s=s, p=p, c=c, w=w)
        for algo in (thrifty, min_min):
            res = algo(inst)
            assert res.tasks_done == inst.tasks
            assert res.makespan > 0

    @given(
        r=st.integers(1, 3),
        s=st.integers(1, 3),
        c=st.sampled_from([1.0, 4.0]),
        w=st.sampled_from([2.0, 7.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_heuristics_never_beat_brute_force(self, r, s, c, w):
        inst = SimpleInstance(r=r, s=s, p=2, c=c, w=w)
        best = brute_force_best(inst).makespan
        assert thrifty(inst).makespan >= best - 1e-9
        assert min_min(inst).makespan >= best - 1e-9

    def test_thrifty_single_worker_matches_alternating(self):
        inst = SimpleInstance(r=3, s=3, p=1, c=2.0, w=3.0)
        assert thrifty(inst).makespan == pytest.approx(
            alternating_greedy(inst).makespan
        )

    def test_minmin_schedule_is_evaluable(self):
        """Min-min's emitted send order must itself be a valid schedule:
        replaying it under greedy claims computes every task (the
        makespans may differ — the claim policies differ)."""
        inst = SimpleInstance(r=3, s=3, p=2, c=4.0, w=7.0)
        res = min_min(inst)
        replay = evaluate_schedule(inst, res.schedule)
        assert replay.tasks_done == inst.tasks
        assert replay.comm_volume == res.comm_volume


class TestBruteForce:
    def test_node_budget_enforced(self):
        inst = SimpleInstance(r=4, s=4, p=2, c=1.0, w=1.0)
        with pytest.raises(RuntimeError):
            brute_force_best(inst, node_budget=50)

    def test_trivial_instance(self):
        inst = SimpleInstance(r=1, s=1, p=2, c=1.0, w=1.0)
        assert brute_force_best(inst).makespan == 3.0
