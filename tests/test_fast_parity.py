"""Parity oracle: the fast timeline engine vs the discrete-event kernel.

The fast engine (:mod:`repro.engine.fast`) must reproduce the DES
*byte for byte*: identical comm/compute interval lists (same order,
same floats, same labels), identical memory peaks, identical numerics,
identical errors.  These tests sweep randomized platforms and shapes —
heterogeneous and homogeneous, one-port and two-port, including
integer-valued parameters that force massive event-time ties — across
every scheduler family.
"""

import random

import numpy as np
import pytest

from repro.blocks import ProblemShape, make_product_instance
from repro.engine import Engine, run_scheduler
from repro.engine.fast import FastEngineUnsupported, run_fast
from repro.platform import Platform
from repro.schedulers import (
    BMM,
    DDOML,
    HeteroIncremental,
    HoLM,
    MaxReuse,
    OBMM,
    ODDOML,
    OMMOML,
    ORROML,
)

ALL_SEVEN = (HoLM, ORROML, OMMOML, ODDOML, DDOML, BMM, OBMM)


def assert_traces_identical(des, fast, context=""):
    """Byte-for-byte equality of two traces (lists compare elementwise)."""
    assert des.comms == fast.comms, f"comm intervals differ: {context}"
    assert des.computes == fast.computes, f"compute intervals differ: {context}"
    assert des.memory_peak == fast.memory_peak, f"memory peaks differ: {context}"


def both(scheduler_cls, platform, shape, **kwargs):
    des = run_scheduler(scheduler_cls(), platform, shape, engine="des", **kwargs)
    fast = run_scheduler(scheduler_cls(), platform, shape, engine="fast", **kwargs)
    return des, fast


def random_platform(rng, p, integral=False):
    """A seeded platform; ``integral`` forces tie-heavy integer rates."""
    if integral:
        cs = [float(rng.randint(1, 3)) for _ in range(p)]
        ws = [float(rng.randint(1, 3)) for _ in range(p)]
    else:
        cs = [rng.uniform(0.1, 2.0) for _ in range(p)]
        ws = [rng.uniform(0.05, 2.0) for _ in range(p)]
    ms = [rng.choice([21, 35, 60, 120]) for _ in range(p)]
    if rng.random() < 0.4:
        return Platform.homogeneous(p, c=cs[0], w=ws[0], m=ms[0])
    return Platform.heterogeneous(cs, ws, ms)


class TestSevenSchedulerParity:
    @pytest.mark.parametrize("integral", [False, True])
    def test_randomized_platform_matrix(self, integral):
        """All seven Section 8 algorithms, randomized platforms/shapes,
        one-port and two-port, tie-free and tie-heavy rates."""
        rng = random.Random(1234 + integral)
        for _ in range(12):
            platform = random_platform(rng, rng.randint(1, 5), integral)
            shape = ProblemShape(
                r=rng.randint(1, 9), s=rng.randint(1, 9),
                t=rng.randint(1, 7), q=2,
            )
            two_port = rng.random() < 0.5
            for cls in ALL_SEVEN:
                des, fast = both(cls, platform, shape, two_port=two_port)
                assert_traces_identical(
                    des, fast, f"{cls.name} {platform.name} {shape} "
                    f"two_port={two_port}"
                )

    def test_identical_workers_maximal_ties(self):
        """Fully symmetric integer platform: every worker identical, so
        the demand queue order is decided purely by tie-breaking."""
        platform = Platform.homogeneous(4, c=1.0, w=1.0, m=21)
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        for cls in ALL_SEVEN:
            for two_port in (False, True):
                des, fast = both(cls, platform, shape, two_port=two_port)
                assert_traces_identical(des, fast, cls.name)


class TestOtherSchedulerParity:
    def test_max_reuse(self):
        platform = Platform.homogeneous(1, c=1.0, w=0.5, m=21)
        shape = ProblemShape(r=4, s=4, t=3, q=2)
        des, fast = both(MaxReuse, platform, shape)
        assert_traces_identical(des, fast, "MaxReuse")

    @pytest.mark.parametrize("variant", ["global", "local", "lookahead"])
    def test_hetero_incremental(self, variant):
        platform = Platform.heterogeneous(
            [0.3, 0.5, 0.4], [0.2, 0.3, 0.25], [21, 30, 25]
        )
        shape = ProblemShape(r=8, s=12, t=5, q=2)
        des = run_scheduler(
            HeteroIncremental(variant), platform, shape, engine="des"
        )
        fast = run_scheduler(
            HeteroIncremental(variant), platform, shape, engine="fast"
        )
        assert_traces_identical(des, fast, f"HeteroLM[{variant}]")


class TestNumericParity:
    def test_bitwise_identical_numeric_execution(self):
        """Same phase order ⇒ bit-identical float accumulation in C."""
        shape = ProblemShape(r=5, s=7, t=4, q=3)
        platform = Platform.homogeneous(3, c=0.3, w=0.2, m=21)
        for cls in (HoLM, ODDOML, BMM):
            a, b, c0 = make_product_instance(shape, seed=5)
            c_des = c0.copy()
            c_fast = c0.copy()
            run_scheduler(cls(), platform, shape, data=(a, b, c_des), engine="des")
            run_scheduler(cls(), platform, shape, data=(a, b, c_fast), engine="fast")
            assert np.array_equal(c_des.array, c_fast.array), cls.name


class TestEdgeCaseParity:
    def test_memory_gate_error_identical(self):
        """Exceeding a worker's buffer capacity raises the same error."""
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        platform = Platform.homogeneous(1, c=1.0, w=1.0, m=10)

        class Oversized(HoLM):
            def launch(self, engine):
                from repro.engine import tile_chunks

                # mu=4 tile needs 16 C buffers > 10.
                engine.env.process(
                    engine.static_agent(0, tile_chunks(shape, 4), 2)
                )

            name = "Oversized"

        messages = {}
        for engine in ("des", "fast"):
            with pytest.raises(RuntimeError, match="memory exceeded") as exc:
                run_scheduler(Oversized(), platform, shape, engine=engine)
            messages[engine] = str(exc.value)
        assert messages["des"] == messages["fast"]

    def test_memory_check_disabled_parity(self):
        """check_memory=False executes over-capacity layouts identically."""
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        platform = Platform.homogeneous(2, c=1.0, w=1.0, m=10)

        class Oversized(ODDOML):
            def chunk_param(self, m):
                return 4

        des = run_scheduler(
            Oversized(), platform, shape, engine="des", check_memory=False
        )
        fast = run_scheduler(
            Oversized(), platform, shape, engine="fast", check_memory=False
        )
        assert_traces_identical(des, fast, "check_memory=False")
        assert des.memory_peak[1] > 10  # the gate really was exceeded

    def test_update_count_mismatch_same_error(self):
        class HalfJob(HoLM):
            def build_chunks(self, shape, param):
                return super().build_chunks(shape, param)[:1]

            def assign(self, platform, shape, chunks):
                return {0: chunks}

        platform = Platform.homogeneous(1, c=0.5, w=0.25, m=21)
        shape = ProblemShape(r=4, s=6, t=3, q=3)
        for engine in ("des", "fast"):
            with pytest.raises(RuntimeError, match="block updates"):
                run_scheduler(HalfJob(), platform, shape, engine=engine)

    def test_bad_generation_gap_same_error(self):
        class BadGap(ORROML):
            generation_gap = 3

        platform = Platform.homogeneous(1, c=0.5, w=0.25, m=21)
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        for engine in ("des", "fast"):
            with pytest.raises(ValueError, match="generation_gap"):
                run_scheduler(BadGap(), platform, shape, engine=engine)


class TestDispatchAndFallback:
    def test_unknown_engine_rejected(self):
        platform = Platform.homogeneous(1, c=0.5, w=0.25, m=21)
        with pytest.raises(ValueError, match="unknown engine"):
            run_scheduler(
                HoLM(), platform, ProblemShape(r=2, s=2, t=2, q=2),
                engine="warp",
            )

    def test_raw_process_scheduler_unsupported_by_fast(self):
        """run_fast refuses raw kernel generators outright."""
        platform = Platform.homogeneous(1, c=1.0, w=0.5, m=50)
        shape = ProblemShape(r=2, s=2, t=2, q=2)

        class RawProcess:
            name = "raw"

            def launch(self, engine):
                def agent():
                    yield engine.env.timeout(1.0)

                engine.env.process(agent())

        with pytest.raises(FastEngineUnsupported):
            run_fast(RawProcess(), platform, shape)

    def test_raw_process_scheduler_falls_back_to_des(self):
        """engine="fast" transparently re-launches raw-process
        schedulers (here: one using a kernel interrupt) on the DES."""
        from repro.sim.core import Interrupt

        platform = Platform.homogeneous(1, c=1.0, w=0.5, m=50)
        shape = ProblemShape(r=2, s=2, t=2, q=2)

        class Interrupting(HoLM):
            """Static HoLM run plus a watchdog process that starts and
            interrupts a dummy sleeper — exercising kernel features the
            fast engine cannot host."""

            name = "Interrupting"
            interrupted = False

            def launch(self, engine):
                if isinstance(engine, Engine):
                    outer = self

                    def sleeper():
                        try:
                            yield engine.env.timeout(1e9)
                        except Interrupt:
                            outer.interrupted = True

                    def watchdog(victim):
                        yield engine.env.timeout(1.0)
                        victim.interrupt("deadline")

                    victim = engine.env.process(sleeper())
                    engine.env.process(watchdog(victim))
                    super().launch(engine)
                else:
                    # On the fast engine the raw processes cannot run.
                    def dummy():
                        yield None

                    engine.env.process(dummy())

        scheduler = Interrupting()
        trace = run_scheduler(scheduler, platform, shape, engine="fast")
        reference = run_scheduler(HoLM(), platform, shape, engine="des")
        assert scheduler.interrupted
        assert trace.comms == reference.comms
        assert trace.computes == reference.computes


class TestExperimentRowParity:
    def test_fig10_rows_identical_at_smoke_scale(self):
        """End to end: the experiment rows are identical per engine."""
        from repro.experiments import fig10

        rows_fast = fig10.run(scale=8, engine="fast")
        rows_des = fig10.run(scale=8, engine="des")
        for rf, rd in zip(rows_fast, rows_des):
            rf = {k: v for k, v in rf.items()}
            rd = {k: v for k, v in rd.items()}
            assert rf == rd


def random_scenario(rng, platform, integral):
    """A seeded scenario mixing every non-stationarity feature.

    ``integral`` snaps event times, factors and durations to integers so
    scenario events collide with transfer/compute completion times and
    tie-breaking is exercised hard.
    """
    from repro.scenarios import Scenario

    sc = Scenario.stationary(platform)
    for _ in range(rng.randint(0, 4)):
        widx = rng.randint(1, platform.p)
        t = float(rng.randint(0, 30)) if integral else rng.uniform(0.0, 30.0)
        f = float(rng.choice([2, 3])) if integral else rng.uniform(0.4, 4.0)
        sc = sc.with_slowdown(widx, t, f)
    if rng.random() < 0.5:
        t = float(rng.randint(0, 20)) if integral else rng.uniform(0.0, 20.0)
        f = 2.0 if integral else rng.uniform(0.5, 2.5)
        sc = sc.with_bandwidth_step(t, f)
    if rng.random() < 0.3:
        sc = sc.with_dropout(
            rng.randint(1, platform.p), float(rng.randint(5, 25)), factor=40.0
        )
    times = set()
    for _ in range(rng.randint(0, 4)):
        t = float(rng.randint(0, 25)) if integral else rng.uniform(0.0, 25.0)
        if t in times:
            continue
        times.add(t)
        d = float(rng.randint(1, 4)) if integral else rng.uniform(0.2, 5.0)
        sc = sc.with_background(t, d)
    return sc


class TestScenarioParity:
    """Byte-for-byte engine parity extends to non-stationary platforms."""

    def test_identity_scenario_reproduces_stationary_trace(self):
        """All-1.0 factors and no background: the scenario path must be
        bit-identical to the plain stationary run on both engines."""
        from repro.scenarios import Scenario

        platform = Platform.heterogeneous(
            [0.4, 0.7, 0.5], [0.3, 0.2, 0.4], [21, 35, 30]
        )
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        identity = Scenario.stationary(platform)
        for cls in ALL_SEVEN:
            for engine in ("fast", "des"):
                plain = run_scheduler(cls(), platform, shape, engine=engine)
                wrapped = run_scheduler(
                    cls(), platform, shape, engine=engine, scenario=identity
                )
                assert plain.comms == wrapped.comms, (cls.name, engine)
                assert plain.computes == wrapped.computes, (cls.name, engine)

    @pytest.mark.parametrize("integral", [False, True])
    def test_randomized_scenario_matrix(self, integral):
        """All seven algorithms under randomized scenarios (time-varying
        rates, dropout, background traffic), one-port and two-port,
        tie-free and tie-heavy."""
        rng = random.Random(4321 + integral)
        for _ in range(8):
            platform = random_platform(rng, rng.randint(1, 5), integral)
            shape = ProblemShape(
                r=rng.randint(1, 8), s=rng.randint(1, 8),
                t=rng.randint(1, 6), q=2,
            )
            scenario = random_scenario(rng, platform, integral)
            two_port = rng.random() < 0.5
            for cls in ALL_SEVEN:
                des, fast = both(
                    cls, platform, shape, two_port=two_port, scenario=scenario
                )
                assert_traces_identical(
                    des, fast,
                    f"{cls.name} {platform.name} {shape} two_port={two_port} "
                    f"{scenario.name}",
                )

    def test_background_at_t0_and_overdue_chain(self):
        """A hold starting at t=0 plus holds scheduled inside earlier
        holds (overdue re-requests) keep both engines in lockstep."""
        from repro.scenarios import Scenario

        platform = Platform.homogeneous(3, c=1.0, w=1.0, m=21)
        shape = ProblemShape(r=5, s=5, t=3, q=2)
        scenario = (
            Scenario.stationary(platform)
            .with_background(0.0, 2.5)
            .with_background(1.0, 3.0)   # overdue behind the first hold
            .with_background(2.0, 1.0)   # overdue behind the second
        )
        for cls in ALL_SEVEN:
            for two_port in (False, True):
                des, fast = both(
                    cls, platform, shape, two_port=two_port, scenario=scenario
                )
                assert_traces_identical(des, fast, f"{cls.name} bg-chain")
        trace = run_scheduler(ALL_SEVEN[0](), platform, shape, scenario=scenario)
        bg = [iv for iv in trace.comms if iv.worker == 0]
        assert len(bg) == 3  # every hold ran (serially, FIFO with workers)
        assert all(iv.blocks == 0 for iv in bg)

    def test_scenario_as_platform_argument(self):
        """run_scheduler accepts the Scenario itself in place of the
        platform (the wrapper carries its platform)."""
        from repro.scenarios import Scenario

        platform = Platform.homogeneous(2, c=0.5, w=0.25, m=21)
        shape = ProblemShape(r=4, s=4, t=3, q=2)
        scenario = Scenario.stationary(platform).with_slowdown(1, 3.0, 2.0)
        via_wrapper = run_scheduler(HoLM(), scenario, shape)
        via_kwarg = run_scheduler(HoLM(), platform, shape, scenario=scenario)
        assert via_wrapper.comms == via_kwarg.comms
        assert via_wrapper.computes == via_kwarg.computes
        with pytest.raises(ValueError, match="not both"):
            run_scheduler(HoLM(), scenario, shape, scenario=scenario)

    def test_scenario_platform_mismatch_rejected(self):
        from repro.scenarios import Scenario

        platform = Platform.homogeneous(2, c=0.5, w=0.25, m=21)
        other = Platform.homogeneous(3, c=0.5, w=0.25, m=21)
        scenario = Scenario.stationary(other)
        for engine in ("fast", "des"):
            with pytest.raises(ValueError, match="wraps platform"):
                run_scheduler(
                    HoLM(), platform, ProblemShape(r=2, s=2, t=2, q=2),
                    engine=engine, scenario=scenario,
                )

    def test_max_reuse_and_hetero_scenario_parity(self):
        from repro.scenarios import Scenario

        p1 = Platform.homogeneous(1, c=1.0, w=0.5, m=21)
        sc = (
            Scenario.stationary(p1)
            .with_slowdown(1, 6.0, 2.5)
            .with_background(2.0, 1.5)
        )
        des, fast = both(MaxReuse, p1, ProblemShape(r=4, s=4, t=3, q=2), scenario=sc)
        assert_traces_identical(des, fast, "MaxReuse scenario")

        plat = Platform.heterogeneous(
            [0.3, 0.5, 0.4], [0.2, 0.3, 0.25], [21, 30, 25]
        )
        sc = (
            Scenario.stationary(plat)
            .with_slowdown(2, 10.0, 2.0)
            .with_background(5.0, 3.0)
        )
        shape = ProblemShape(r=8, s=12, t=5, q=2)
        for variant in ("global", "local", "lookahead"):
            des = run_scheduler(
                HeteroIncremental(variant), plat, shape, engine="des", scenario=sc
            )
            fast = run_scheduler(
                HeteroIncremental(variant), plat, shape, engine="fast", scenario=sc
            )
            assert_traces_identical(des, fast, f"HeteroLM[{variant}] scenario")

    def test_numeric_execution_identical_under_scenario(self):
        """Scenario timing shifts must not change the numeric result:
        same updates in the same per-worker order, bit-identical C."""
        from repro.scenarios import Scenario

        shape = ProblemShape(r=5, s=7, t=4, q=3)
        platform = Platform.homogeneous(3, c=0.3, w=0.2, m=21)
        scenario = (
            Scenario.stationary(platform)
            .with_slowdown(2, 4.0, 3.0)
            .with_background(1.0, 2.0)
        )
        for cls in (HoLM, ODDOML, BMM):
            a, b, c0 = make_product_instance(shape, seed=5)
            c_des = c0.copy()
            c_fast = c0.copy()
            run_scheduler(
                cls(), platform, shape, data=(a, b, c_des), engine="des",
                scenario=scenario,
            )
            run_scheduler(
                cls(), platform, shape, data=(a, b, c_fast), engine="fast",
                scenario=scenario,
            )
            assert np.array_equal(c_des.array, c_fast.array), cls.name


class TestFallbackDataIntegrity:
    """The fast→DES fallback must never double-apply numeric updates."""

    def test_fallback_with_data_yields_correct_C(self):
        """Regression: a raw-process scheduler with data= attached must
        produce a numerically correct C after the DES fallback — the
        abandoned fast attempt may not have touched it."""
        platform = Platform.homogeneous(2, c=1.0, w=0.5, m=50)
        shape = ProblemShape(r=3, s=3, t=2, q=2)

        class RawTail(HoLM):
            """Chunk agents first, then a raw process: the fast launch
            registers real work before discovering it must bail."""

            name = "RawTail"

            def launch(self, engine):
                super().launch(engine)

                def tick():
                    yield engine.env.timeout(1.0)

                engine.env.process(tick())

        a, b, c0 = make_product_instance(shape, seed=11)
        c_fallback = c0.copy()
        trace = run_scheduler(
            RawTail(), platform, shape, data=(a, b, c_fallback), engine="fast"
        )
        expected = a.array @ b.array + c0.array
        assert np.allclose(c_fallback.array, expected)
        assert trace.total_updates == shape.total_updates

    def test_fast_attempt_sees_none_data(self):
        """Structural guarantee: until launch succeeds, the fast engine
        holds no reference to the numeric data at all."""
        from repro.engine.fast import run_fast

        platform = Platform.homogeneous(1, c=1.0, w=0.5, m=50)
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        seen = {}

        class Recorder(HoLM):
            name = "Recorder"

            def launch(self, engine):
                seen["data"] = engine.data
                super().launch(engine)

        a, b, c0 = make_product_instance(shape, seed=3)
        run_fast(Recorder(), platform, shape, data=(a, b, c0.copy()))
        assert seen["data"] is None


# ---------------------------------------------------------------------------
# Batched evaluation (repro.engine.batch): byte-identical to engine="fast"
# ---------------------------------------------------------------------------

from repro.engine import BatchItem, BatchTrace, run_batch  # noqa: E402
from repro.platform import perturbed, scaled_bandwidth  # noqa: E402


def _jittered_platforms(base, n, seed, sigma=0.01):
    rng = np.random.default_rng(seed)
    return [perturbed(base, rng, sigma) for _ in range(n)]


def assert_batch_matches_fast(items, results=None, context=""):
    """Every run_batch result equals the scalar fast run of its item."""
    if results is None:
        results = run_batch(items)
    assert len(results) == len(items)
    for i, (item, got) in enumerate(zip(items, results)):
        want = run_scheduler(
            item.scheduler(), item.platform, item.shape,
            two_port=item.two_port, check_memory=item.check_memory,
            engine="fast", scenario=item.scenario,
        )
        assert got.comms == want.comms, f"{context} item {i}: comms differ"
        assert got.computes == want.computes, f"{context} item {i}: computes"
        assert got.memory_peak == want.memory_peak, f"{context} item {i}"
    return results


class TestBatchedEngineParity:
    """run_batch groups by decision structure and must stay byte-exact."""

    def test_jittered_groups_all_schedulers(self):
        """Each scheduler over a group of nearby jittered platforms:
        most rows vectorize; all rows match the scalar fast engine."""
        base = Platform.heterogeneous(
            [0.4, 0.7, 0.5, 0.6], [0.3, 0.2, 0.4, 0.35], [21, 35, 30, 60]
        )
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        for k, cls in enumerate(ALL_SEVEN):
            items = [
                BatchItem(scheduler=cls, platform=plat, shape=shape)
                for plat in _jittered_platforms(base, 6, seed=100 + k)
            ]
            results = assert_batch_matches_fast(items, context=cls.name)
            assert any(isinstance(r, BatchTrace) for r in results), (
                f"{cls.name}: nothing vectorized — grouping is broken"
            )

    def test_bandwidth_scaled_group_fully_vectorizes(self):
        """Uniform nearby bandwidth scalings keep scheduler decisions
        identical, so the whole group must ride the vectorized path."""
        base = Platform.homogeneous(4, c=0.5, w=0.3, m=35)
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        items = [
            BatchItem(
                scheduler=HoLM,
                platform=scaled_bandwidth(base, 1.0 + 0.002 * i),
                shape=shape,
            )
            for i in range(8)
        ]
        results = assert_batch_matches_fast(items, context="bandwidth")
        assert all(isinstance(r, BatchTrace) for r in results)

    def test_mixed_structure_group_falls_back_per_item(self):
        """Items with different platforms/shapes/schedulers in one call:
        grouping separates them and every result still matches."""
        shape_a = ProblemShape(r=5, s=5, t=3, q=2)
        shape_b = ProblemShape(r=4, s=6, t=4, q=2)
        items = [
            BatchItem(HoLM, Platform.homogeneous(3, c=1.0, w=0.5, m=21), shape_a),
            BatchItem(BMM, Platform.homogeneous(2, c=0.7, w=0.4, m=35), shape_b),
            BatchItem(HoLM, Platform.homogeneous(3, c=1.0, w=0.5, m=21), shape_a),
            BatchItem(
                ODDOML, Platform.heterogeneous([0.3, 0.6], [0.2, 0.3], [21, 30]),
                shape_b,
            ),
        ]
        assert_batch_matches_fast(items, context="mixed")

    def test_single_item_group_returns_scalar_trace(self):
        """Below min_group the scalar fast engine runs; the result is a
        plain Trace, not a BatchTrace."""
        items = [
            BatchItem(
                HoLM, Platform.homogeneous(2, c=1.0, w=0.5, m=21),
                ProblemShape(r=4, s=4, t=3, q=2),
            )
        ]
        (result,) = assert_batch_matches_fast(items, context="single")
        assert not isinstance(result, BatchTrace)

    def test_two_port_groups(self):
        base = Platform.heterogeneous([0.4, 0.6, 0.5], [0.3, 0.2, 0.35], [21, 30, 35])
        shape = ProblemShape(r=5, s=6, t=4, q=2)
        items = [
            BatchItem(ORROML, plat, shape, two_port=True)
            for plat in _jittered_platforms(base, 5, seed=7)
        ]
        assert_batch_matches_fast(items, context="two_port")

    def test_memory_gate_error_propagates_per_item(self):
        """A memory-capped group aborts vectorization and re-runs scalar,
        so each item raises (or survives) exactly like engine="fast"."""
        shape = ProblemShape(r=4, s=4, t=2, q=2)

        class Oversized(HoLM):
            def launch(self, engine):
                from repro.engine import tile_chunks

                engine.env.process(
                    engine.static_agent(0, tile_chunks(shape, 4), 2)
                )

            name = "Oversized"

        items = [
            BatchItem(Oversized, Platform.homogeneous(1, c=c, w=1.0, m=10), shape)
            for c in (1.0, 1.001)
        ]
        with pytest.raises(RuntimeError, match="memory exceeded"):
            run_batch(items)

    def test_batch_trace_summarizes_like_trace(self):
        """BatchTrace feeds summarize_trace / metrics identically."""
        from repro.analysis.metrics import summarize_trace

        base = Platform.homogeneous(3, c=0.5, w=0.3, m=35)
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        items = [
            BatchItem(ODDOML, scaled_bandwidth(base, 1.0 + 0.002 * i), shape)
            for i in range(4)
        ]
        results = run_batch(items)
        assert all(isinstance(r, BatchTrace) for r in results)
        for item, got in zip(items, results):
            want = run_scheduler(item.scheduler(), item.platform, item.shape)
            assert summarize_trace(got) == summarize_trace(want)
            assert got.to_trace().comms == want.comms


from hypothesis import given, settings, strategies as st  # noqa: E402


class TestBatchedParityProperty:
    """Hypothesis: random point groups — batched == scalar fast.

    ``sigma=0`` exercises identical replicas (maximal grouping and
    maximal ties), small sigmas the vectorized same-order path, larger
    sigmas the divergence detector and scalar fallback.
    """

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        seed=st.integers(0, 2**20),
        n_points=st.integers(2, 5),
        p=st.integers(1, 4),
        sigma=st.sampled_from([0.0, 0.005, 0.05]),
        scheduler_cls=st.sampled_from(ALL_SEVEN),
        r=st.integers(1, 6),
        s=st.integers(1, 6),
        t=st.integers(1, 5),
        two_port=st.booleans(),
    )
    def test_random_groups_match_scalar_fast(
        self, seed, n_points, p, sigma, scheduler_cls, r, s, t, two_port
    ):
        base = random_platform(random.Random(seed), p)
        shape = ProblemShape(r=r, s=s, t=t, q=2)
        items = [
            BatchItem(scheduler_cls, plat, shape, two_port=two_port)
            for plat in _jittered_platforms(base, n_points, seed, sigma)
        ]
        assert_batch_matches_fast(
            items, context=f"seed={seed} {scheduler_cls.name}"
        )
