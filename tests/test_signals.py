"""Graceful interruption of in-flight CLI sweeps.

SIGINT and SIGTERM of a ``python -m repro sweep`` subprocess must tear
the worker pool down (no orphaned processes), exit with the
conventional 130/143 code, leave the sweep's cache manifest
well-formed, and let ``--resume`` finish the campaign with results
byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}

#: Injected per-point hang: every fig10 point sleeps this long before
#: completing with its correct value, so the campaign is reliably
#: in-flight when the signal lands (21 points ≈ 21s on 2 workers).
HANG_S = 2.0
CHAOS = f"hang=1,hang_s={HANG_S:g},seed=0"


def _sweep_cmd(cache_dir, *extra):
    return [
        sys.executable, "-m", "repro", "sweep", "fig10",
        "--cache-dir", str(cache_dir), "--scale", "8",
        "--backend", "persistent", "--jobs", "2", "--quiet", *extra,
    ]


def _entry_shapes(cache_dir):
    """Every fig10 entry minus its write timestamp, for byte-identity."""
    out = {}
    for path in sorted(Path(cache_dir, "fig10").glob("*/*.json")):
        record = json.loads(path.read_text())
        record.pop("created", None)
        out[path.name] = record
    return out


def _wait_for_entries(cache_dir, n, deadline_s=30.0):
    """Block until ``n`` completed points have been cached."""
    deadline = time.monotonic() + deadline_s
    target = Path(cache_dir, "fig10")
    while time.monotonic() < deadline:
        if len(list(target.glob("*/*.json"))) >= n:
            return
        time.sleep(0.05)
    raise AssertionError(f"no {n} cache entries within {deadline_s}s")


def _assert_group_gone(pgid, deadline_s=10.0):
    """The sweep process group (CLI + pool workers) fully exited."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            os.killpg(pgid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned processes survive in group {pgid}")


class TestInterruptedSweep:
    @pytest.mark.parametrize(
        "signo,code",
        [(signal.SIGINT, 130), (signal.SIGTERM, 143)],
        ids=["sigint", "sigterm"],
    )
    def test_interrupt_then_resume_byte_identical(
        self, tmp_path, signo, code
    ):
        interrupted = tmp_path / "interrupted"
        clean = tmp_path / "clean"

        # Uninterrupted reference run (no chaos: the hang only delays,
        # never changes values, so the caches must end up identical).
        subprocess.run(
            _sweep_cmd(clean), env=ENV, check=True, timeout=120,
            capture_output=True,
        )
        reference = _entry_shapes(clean)
        assert len(reference) == 21

        proc = subprocess.Popen(
            _sweep_cmd(interrupted, "--chaos", CHAOS),
            env=ENV, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            _wait_for_entries(interrupted, 2)
            proc.send_signal(signo)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)

        assert proc.returncode == code, err
        assert "rerun with --resume" in err
        _assert_group_gone(proc.pid)

        # The journals survived the interrupt well-formed: every line
        # parses, no duplicate puts, and each put names a real entry
        # (one manifest per shard directory touched).
        def journal_records(root):
            return [
                json.loads(line)
                for manifest in sorted(root.glob("*/MANIFEST.jsonl"))
                for line in manifest.read_text().splitlines()
                if line.strip()
            ]

        records = journal_records(interrupted / "fig10")
        puts = [r["key"] for r in records if r["op"] == "put"]
        assert len(puts) == len(set(puts)) >= 2
        for key in puts:
            assert (interrupted / "fig10" / key[:2] / f"{key}.json").is_file()
        done_before = len(puts)

        # --resume completes only the remainder, byte-identically.
        result = subprocess.run(
            _sweep_cmd(interrupted, "--resume"),
            env=ENV, timeout=120, capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        assert _entry_shapes(interrupted) == reference
        again = journal_records(interrupted / "fig10")
        final_puts = {r["key"] for r in again if r["op"] == "put"}
        assert len(final_puts) == 21 and set(puts) <= final_puts
        assert done_before < 21  # the interrupt really landed mid-sweep
