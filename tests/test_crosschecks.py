"""Cross-implementation checks: analytical evaluators vs the DES kernel.

Two independent implementations of the same semantics must agree — the
strongest guard this repository has against a bug in either the event
kernel or the closed-form evaluators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lu.homogeneous import lu_makespan_estimate, lu_worker_count
from repro.lu.scheduler import simulate_parallel_lu
from repro.platform import Platform, ut_cluster_platform
from repro.simple import (
    SimpleInstance,
    alternating_sequence,
    evaluate_schedule,
    min_min,
    thrifty,
)
from repro.simple.dessim import simulate_schedule_des


@st.composite
def instances_with_schedules(draw):
    r = draw(st.integers(1, 4))
    s = draw(st.integers(1, 4))
    p = draw(st.integers(1, 3))
    c = draw(st.sampled_from([0.5, 1.0, 4.0]))
    w = draw(st.sampled_from([1.0, 3.0, 9.0]))
    inst = SimpleInstance(r=r, s=s, p=p, c=c, w=w)
    # A complete schedule: every worker-independent file sent to a
    # random worker; built by running one of the heuristics.
    algo = draw(st.sampled_from(["thrifty", "minmin", "alt"]))
    if algo == "alt":
        schedule = list(alternating_sequence(r, s, worker=1))
    elif algo == "thrifty":
        schedule = list(thrifty(inst).schedule)
    else:
        schedule = list(min_min(inst).schedule)
    return inst, schedule


class TestSimpleModelVsDES:
    @given(instances_with_schedules())
    @settings(max_examples=60, deadline=None)
    def test_makespans_agree(self, inst_sched):
        """The analytical evaluator and the DES execution agree exactly."""
        inst, schedule = inst_sched
        analytical = evaluate_schedule(
            inst, schedule, require_complete=False
        ).makespan
        des = simulate_schedule_des(inst, schedule)
        assert des == pytest.approx(analytical, abs=1e-9)

    def test_empty_schedule(self):
        inst = SimpleInstance(r=1, s=1, p=1, c=1, w=1)
        assert simulate_schedule_des(inst, []) == 0.0


class TestParallelLUSimulation:
    def test_trace_is_valid_and_complete(self):
        plat = ut_cluster_platform(p=8)
        trace = simulate_parallel_lu(plat, r=56, mu=14)
        # All core + pivot + panel operations accounted for.
        assert trace.makespan > 0
        assert trace.comm_blocks > 0
        trace.check_invariants()

    def test_simulation_close_to_estimate(self):
        """The engine simulation and the closed-form estimate agree
        within the estimate's slack (it assumes perfect overlap inside
        each core update and none across steps)."""
        plat = ut_cluster_platform(p=8)
        wk = plat.workers[0]
        r, mu = 56, 14
        sim = simulate_parallel_lu(plat, r, mu).makespan
        est = lu_makespan_estimate(r, mu, wk.c, wk.w, plat.p)
        assert sim == pytest.approx(est, rel=0.35)

    def test_more_workers_helps_until_port_bound(self):
        plat1 = Platform.homogeneous(1, c=0.01, w=1.0, m=1000)
        plat4 = Platform.homogeneous(4, c=0.01, w=1.0, m=1000)
        t1 = simulate_parallel_lu(plat1, r=24, mu=6).makespan
        t4 = simulate_parallel_lu(plat4, r=24, mu=6).makespan
        assert t4 < t1

    def test_enrolment_matches_formula(self):
        plat = Platform.homogeneous(8, c=0.1, w=1.0, m=1000)
        mu = 6
        r = 36
        trace = simulate_parallel_lu(plat, r=r, mu=mu)
        wk = plat.workers[0]
        expected = lu_worker_count(mu, wk.c, wk.w, plat.p)
        # The first step has only r/mu - 1 core column groups, which caps
        # how many workers can ever receive one.
        assert len(trace.enrolled_workers) == min(expected, r // mu - 1)

    def test_heterogeneous_platform_rejected(self):
        plat = Platform.heterogeneous([1, 2], [1, 1], [100, 100])
        with pytest.raises(ValueError):
            simulate_parallel_lu(plat, r=12, mu=3)

    def test_divisibility_enforced(self):
        plat = ut_cluster_platform(p=2)
        with pytest.raises(ValueError):
            simulate_parallel_lu(plat, r=50, mu=7)
