"""Tests for the fault-tolerance layer (ISSUE 7).

Covers the tentpole surface: RetryPolicy determinism and validation,
per-point timeouts, the max-failures circuit breaker with its
structured report, quarantine lifecycle in the cache manifest, the
ChaosBackend fault injector (including real worker SIGKILLs healed by
the persistent pool), the byte-invisibility of the inert policy, and
crash recovery of a sweep whose worker is killed externally mid-run.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    ChaosBackend,
    ChaosFault,
    ChaosSpec,
    CircuitOpenError,
    ResultCache,
    RetryPolicy,
    Sweep,
    SweepPointError,
    create_backend,
    run_sweep,
)
from repro.runner.backends.chaos import decide

BACKEND_NAMES = ("serial", "process", "persistent")


def _square_point(params):
    return {"x": params["x"], "square": params["x"] ** 2}


def _slow_point(params):
    time.sleep(params.get("sleep", 0.05))
    return {"x": params["x"]}


def _sweep(n=8, name="ft", fn=_square_point, **extra):
    return Sweep(
        name=name, run_fn=fn, points=tuple({"x": x, **extra} for x in range(n))
    )


def _entry_shapes(cache, sweep):
    """Every entry file minus its write timestamp, for byte-identity."""
    out = {}
    for path in sorted((cache.root / sweep).glob("*.json")):
        entry = json.loads(path.read_text())
        entry.pop("created")
        out[path.name] = entry
    return out


class TestRetryPolicy:
    def test_inert_by_default(self):
        assert not RetryPolicy().active
        assert RetryPolicy(retries=1).active
        assert RetryPolicy(timeout=1.0).active
        assert RetryPolicy(max_failures=1).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff": -0.1},
            {"jitter": 1.5},
            {"timeout": 0.0},
            {"max_failures": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=4, backoff=0.1, backoff_cap=0.3, seed=7)
        delays = [policy.delay(r, "sweep-a") for r in (1, 2, 3, 4)]
        assert delays == [policy.delay(r, "sweep-a") for r in (1, 2, 3, 4)]
        for round_no, delay in enumerate(delays, start=1):
            base = min(0.1 * 2 ** (round_no - 1), 0.3)
            assert base * (1 - policy.jitter) <= delay <= base
        # distinct sweeps desynchronize, distinct seeds too
        assert policy.delay(1, "sweep-b") != delays[0]
        assert RetryPolicy(retries=4, seed=8).delay(1, "sweep-a") != delays[0]

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(retries=3, backoff=0.2, backoff_cap=10.0, jitter=0.0)
        assert [policy.delay(r) for r in (1, 2, 3)] == [0.2, 0.4, 0.8]


class TestChaosSpec:
    def test_parse_roundtrip(self):
        spec = ChaosSpec.parse("fail=0.2,hang=0.1,crash=0.05,hang_s=2,seed=7,sticky=3")
        assert spec == ChaosSpec(
            fail=0.2, hang=0.1, crash=0.05, hang_s=2.0, seed=7, sticky=3
        )
        assert ChaosSpec.parse("fail=0.5,sticky=permanent").sticky == -1
        assert not ChaosSpec.parse("").active

    @pytest.mark.parametrize("arg", ["fail", "bogus=1", "fail=2.0", "sticky=0"])
    def test_parse_rejects(self, arg):
        with pytest.raises(ValueError):
            ChaosSpec.parse(arg)

    def test_decide_is_deterministic_and_attempt_free(self):
        spec = ChaosSpec(fail=0.5, seed=3)
        points = [{"x": i} for i in range(64)]
        first = [decide(spec, p, 0) for p in points]
        assert first == [decide(spec, p, 0) for p in points]
        assert any(first) and not all(first)  # some faulty, some not
        # sticky=1: every fault clears on attempt 1
        assert all(decide(spec, p, 1) is None for p in points)
        # permanent: never clears
        perm = ChaosSpec(fail=0.5, seed=3, sticky=-1)
        assert [decide(perm, p, 9) for p in points] == first

    def test_severity_order(self):
        spec = ChaosSpec(fail=1.0, hang=1.0, crash=1.0, seed=0)
        assert decide(spec, {"x": 1}, 0) == "crash"


class TestByteInvisibility:
    """The inert policy must not change a single backend call."""

    def test_default_run_issues_historic_map_calls(self):
        calls = []

        class SpyBackend:
            jobs = 1

            def map(self, fn, items, **kwargs):
                calls.append(kwargs)
                from repro.runner.backends.base import run_one

                for params in items:
                    yield run_one(fn, params)

            def close(self):
                pass

        run_sweep(_sweep(), backend=SpyBackend())
        run_sweep(_sweep(), backend=SpyBackend(), retry=RetryPolicy())
        assert calls == [{}, {}]  # no new keywords on the historic path

    def test_transient_chaos_converges_byte_identical(self, tmp_path):
        clean_cache = ResultCache(tmp_path / "clean")
        clean = run_sweep(_sweep(), cache=clean_cache, code="v")
        for name in BACKEND_NAMES:
            chaos_cache = ResultCache(tmp_path / f"chaos-{name}")
            with create_backend(name, jobs=3) as inner:
                backend = ChaosBackend(
                    inner=inner, spec=ChaosSpec(fail=0.4, seed=5)
                )
                result = run_sweep(
                    _sweep(), cache=chaos_cache, code="v", backend=backend,
                    retry=RetryPolicy(retries=2, backoff=0.001),
                    on_error="keep",
                )
            assert result.errors == 0
            assert [o.key for o in result.outcomes] == [
                o.key for o in clean.outcomes
            ]
            assert [o.value for o in result.outcomes] == [
                o.value for o in clean.outcomes
            ]
            assert _entry_shapes(chaos_cache, "ft") == _entry_shapes(
                clean_cache, "ft"
            )
            assert sorted(chaos_cache.manifest("ft")) == sorted(
                clean_cache.manifest("ft")
            )

    def test_crash_injection_heals_persistent_pool(self, tmp_path):
        clean = run_sweep(_sweep(16), code="v")
        with create_backend("persistent", jobs=3) as inner:
            backend = ChaosBackend(
                inner=inner, spec=ChaosSpec(crash=0.2, fail=0.1, seed=11)
            )
            result = run_sweep(
                _sweep(16), code="v", backend=backend,
                retry=RetryPolicy(retries=3, backoff=0.001), on_error="keep",
            )
            respawns = inner.respawns
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]
        assert respawns > 0  # the kills were real


class TestTimeout:
    @pytest.mark.parametrize("name", ("process", "persistent"))
    def test_hang_reaped_and_retried(self, name):
        """A hang far longer than the timeout costs ~timeout, and the
        sticky=1 retry computes the correct value."""
        clean = run_sweep(_sweep(8), code="v")
        with create_backend(name, jobs=3) as inner:
            backend = ChaosBackend(
                inner=inner, spec=ChaosSpec(hang=0.4, hang_s=30.0, seed=7)
            )
            start = time.perf_counter()
            result = run_sweep(
                _sweep(8), code="v", backend=backend,
                retry=RetryPolicy(retries=1, timeout=0.5, backoff=0.001),
                on_error="keep",
            )
            elapsed = time.perf_counter() - start
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]
        assert elapsed < 10.0  # nowhere near the 30 s hangs

    def test_timeout_without_retries_fails_the_point(self):
        with create_backend("process", jobs=2) as inner:
            backend = ChaosBackend(
                inner=inner, spec=ChaosSpec(hang=1.0, hang_s=30.0, seed=0)
            )
            result = run_sweep(
                _sweep(2), backend=backend,
                retry=RetryPolicy(timeout=0.3), on_error="keep",
            )
        assert result.errors == 2
        assert all(
            "PointTimeout" in o.error for o in result.outcomes
        )

    def test_serial_backend_ignores_timeout(self):
        # Documented: serial never interrupts a point.
        result = run_sweep(
            _sweep(2, fn=_slow_point, sleep=0.05), backend="serial",
            retry=RetryPolicy(timeout=0.001), on_error="keep",
        )
        assert result.errors == 0


class TestCircuitBreaker:
    def test_breaker_trips_with_structured_report(self, tmp_path):
        cache = ResultCache(tmp_path)
        backend = ChaosBackend(
            inner="serial", spec=ChaosSpec(fail=0.5, seed=3, sticky=-1)
        )
        with pytest.raises(CircuitOpenError) as excinfo:
            run_sweep(
                _sweep(), cache=cache, code="v", backend=backend,
                retry=RetryPolicy(
                    retries=1, backoff=0.001, max_failures=2
                ),
                on_error="keep",
            )
        report = excinfo.value.report
        assert report.sweep == "ft"
        assert report.max_failures == 2
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure["attempts"] == 2
            assert "ChaosFault" in failure["error"]
        payload = report.to_dict()
        assert json.dumps(payload)  # structured and serialisable
        assert payload["total"] == 8
        assert "circuit breaker opened" in report.render()

    def test_breaker_never_trips_below_threshold(self):
        backend = ChaosBackend(
            inner="serial", spec=ChaosSpec(fail=0.5, seed=3, sticky=-1)
        )
        result = run_sweep(
            _sweep(), backend=backend,
            retry=RetryPolicy(retries=1, backoff=0.001, max_failures=100),
            on_error="keep",
        )
        assert 0 < result.errors < 8

    def test_on_error_raise_still_wins(self):
        backend = ChaosBackend(
            inner="serial", spec=ChaosSpec(fail=0.5, seed=3, sticky=-1)
        )
        with pytest.raises(SweepPointError):
            run_sweep(
                _sweep(), backend=backend,
                retry=RetryPolicy(retries=1, backoff=0.001, max_failures=2),
            )


class TestQuarantine:
    def _fail_permanently(self, cache, max_failures=None):
        backend = ChaosBackend(
            inner="serial", spec=ChaosSpec(fail=0.5, seed=3, sticky=-1)
        )
        return run_sweep(
            _sweep(), cache=cache, code="v", backend=backend,
            retry=RetryPolicy(
                retries=1, backoff=0.001, max_failures=max_failures
            ),
            on_error="keep",
        )

    def test_exhausted_retries_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = self._fail_permanently(cache)
        quarantined = cache.quarantined("ft")
        assert len(quarantined) == result.errors > 0
        for record in quarantined.values():
            assert record["op"] == "quarantine"
            assert "ChaosFault" in record["error"]
            assert "x" in record["params"]
        # quarantined keys are not in the live index and have no file
        assert not set(quarantined) & set(cache.manifest("ft"))
        stats = cache.stats()
        assert stats.quarantined == len(quarantined)
        assert stats.per_sweep == (("ft", stats.entries, stats.quarantined),)

    def test_no_quarantine_without_retry_budget(self, tmp_path):
        """retries=0 keeps the historic contract: failed points stay
        uncached and unquarantined, resume recomputes them."""
        cache = ResultCache(tmp_path)
        backend = ChaosBackend(
            inner="serial", spec=ChaosSpec(fail=0.5, seed=3, sticky=-1)
        )
        result = run_sweep(
            _sweep(), cache=cache, code="v", backend=backend, on_error="keep"
        )
        assert result.errors > 0
        assert cache.quarantined("ft") == {}

    def test_resume_skips_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = self._fail_permanently(cache)
        result = run_sweep(
            _sweep(), cache=cache, code="v", resume=True, on_error="keep",
            retry=RetryPolicy(retries=1, backoff=0.001),
        )
        assert result.quarantined == first.errors
        assert result.errors == 0
        assert result.misses == 0  # nothing recomputed
        assert result.hits == 8 - first.errors
        statuses = {o.status for o in result.outcomes}
        assert statuses == {"ok", "quarantined"}

    def test_retry_quarantined_clears_on_success(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = self._fail_permanently(cache)
        assert cache.quarantined("ft")
        # clean backend this time: the points compute and clear
        result = run_sweep(
            _sweep(), cache=cache, code="v", resume=True,
            retry_quarantined=True,
            retry=RetryPolicy(retries=1, backoff=0.001), on_error="keep",
        )
        assert result.errors == result.quarantined == 0
        assert result.misses == first.errors
        assert cache.quarantined("ft") == {}
        assert cache.stats().quarantined == 0
        assert len(cache.manifest("ft")) == 8

    def test_quarantine_survives_manifest_rebuild(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fail_permanently(cache)
        before = cache.quarantined("ft")
        assert before
        # tear every journal holding a quarantine: append garbage,
        # forcing a per-shard rebuild
        for key in before:
            path = cache.shard_manifest_path("ft", key[:2])
            with open(path, "a") as handle:
                handle.write("{torn-line\n")
        assert cache.quarantined("ft") == before  # salvaged, not amnestied
        assert cache.manifest("ft")  # live index rebuilt too

    def test_breaker_leaves_quarantine_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CircuitOpenError):
            self._fail_permanently(cache, max_failures=2)
        assert len(cache.quarantined("ft")) == 2


class TestCrashRecovery:
    """Acceptance: kill -9 of a worker mid-sweep costs only requeues."""

    def test_external_sigkill_mid_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = _sweep(16, fn=_slow_point, sleep=0.05)
        clean = run_sweep(sweep, code="v")
        killed = []

        with create_backend("persistent", jobs=2) as backend:
            def assassin(event):
                if not killed and event.index >= 1:
                    victims = backend.worker_pids()
                    os.kill(victims[0], signal.SIGKILL)
                    killed.append(victims[0])

            result = run_sweep(
                sweep, cache=cache, code="v", backend=backend,
                progress=assassin,
            )
            assert killed, "test never fired the kill"
            assert backend.respawns >= 1

        # the sweep completed correctly despite the murder
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]
        # manifest integrity: parsable, no torn lines, no duplicates
        # (one journal per shard directory touched)
        lines = [
            line
            for path in sorted((tmp_path / "ft").glob("*/MANIFEST.jsonl"))
            for line in path.read_text().splitlines()
        ]
        records = [json.loads(line) for line in lines if line.strip()]
        put_keys = [r["key"] for r in records if r["op"] == "put"]
        assert len(put_keys) == len(set(put_keys)) == 16
        # resume recomputes nothing
        again = run_sweep(sweep, cache=cache, code="v", resume=True)
        assert again.hits == 16 and again.misses == 0


class TestHypothesisConvergence:
    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        fail=st.floats(min_value=0.0, max_value=0.9),
        sticky=st.integers(min_value=1, max_value=2),
    )
    def test_transient_chaos_always_converges(self, seed, fail, sticky):
        """Property: any transient profile with enough retries produces
        exactly the failure-free outcome."""
        sweep = _sweep(6, name="hyp")
        clean = run_sweep(sweep, code="v")
        backend = ChaosBackend(
            inner="serial",
            spec=ChaosSpec(fail=fail, seed=seed, sticky=sticky),
        )
        result = run_sweep(
            sweep, code="v", backend=backend,
            retry=RetryPolicy(retries=sticky, backoff=0.0, jitter=0.0),
            on_error="keep",
        )
        assert result.errors == 0
        assert [o.value for o in result.outcomes] == [
            o.value for o in clean.outcomes
        ]


class TestAlarmGuard:
    """run_one's SIGALRM bracket must not clobber a caller's alarm."""

    @pytest.fixture(autouse=True)
    def _pristine_sigalrm(self):
        handler = signal.getsignal(signal.SIGALRM)
        yield
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, handler)

    def test_preexisting_handler_and_timer_survive_guarded_point(self):
        from repro.runner.backends.base import run_one

        fired = []

        def user_handler(signum, frame):
            fired.append(signum)

        signal.signal(signal.SIGALRM, user_handler)
        signal.setitimer(signal.ITIMER_REAL, 60.0)

        task = run_one(_square_point, {"x": 3}, timeout=5.0)
        assert task.error is None and task.value["square"] == 9

        # The displaced handler is back, and the caller's 60s alarm is
        # re-armed with (roughly) the time it had left.
        assert signal.getsignal(signal.SIGALRM) is user_handler
        remaining = signal.setitimer(signal.ITIMER_REAL, 0.0)[0]
        assert 55.0 < remaining <= 60.0
        assert not fired

    def test_user_alarm_due_during_point_still_fires(self):
        from repro.runner.backends.base import run_one

        fired = []

        def user_handler(signum, frame):
            fired.append(time.monotonic())

        signal.signal(signal.SIGALRM, user_handler)
        signal.setitimer(signal.ITIMER_REAL, 0.1)

        # The point outlives the caller's alarm; the guard owns the
        # single ITIMER_REAL meanwhile, then re-arms the displaced
        # alarm floored at a tick so it fires promptly afterwards.
        task = run_one(_slow_point, {"x": 1, "sleep": 0.3}, timeout=5.0)
        assert task.error is None
        deadline = time.monotonic() + 2.0
        while not fired and time.monotonic() < deadline:
            time.sleep(0.01)
        assert fired, "displaced alarm never fired after the point"

    def test_timeout_still_enforced_with_displaced_handler(self):
        from repro.runner.backends.base import run_one

        signal.signal(signal.SIGALRM, lambda s, f: None)
        task = run_one(_slow_point, {"x": 1, "sleep": 5.0}, timeout=0.2)
        assert task.error is not None and "PointTimeout" in task.error
