"""Tests for Section 5 resource selection (repro.core.homogeneous)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import ProblemShape
from repro.core.homogeneous import (
    optimal_worker_count,
    plan_homogeneous,
    small_matrix_nu,
    startup_overhead_fraction,
)
from repro.core.layout import mu_overlap
from repro.platform import Platform, ut_cluster_platform


class TestWorkerCount:
    def test_formula(self):
        # P = ceil(mu*w / 2c)
        assert optimal_worker_count(mu=4, c=2.0, w=4.5, p=100) == 5

    def test_clipped_by_p(self):
        assert optimal_worker_count(mu=4, c=2.0, w=4.5, p=3) == 3

    def test_ut_cluster_enrolls_four(self):
        """The paper: 'HoLM uses four workers' on the UT cluster."""
        plat = ut_cluster_platform(p=8)
        wk = plat.workers[0]
        mu = mu_overlap(wk.m)
        assert optimal_worker_count(mu, wk.c, wk.w, 8) == 4

    def test_ut_cluster_low_memory_enrolls_two(self):
        """Figure 13: 'HoLM will use respectively two and four workers'."""
        plat = ut_cluster_platform(p=8, memory_mb=132)
        wk = plat.workers[0]
        mu = mu_overlap(wk.m)
        assert optimal_worker_count(mu, wk.c, wk.w, 8) == 2

    @given(
        mu=st.integers(1, 200),
        c=st.floats(0.001, 10),
        w=st.floats(0.001, 10),
        p=st.integers(1, 64),
    )
    @settings(max_examples=100, deadline=None)
    def test_count_saturates_port(self, mu, c, w, p):
        """P is the smallest count with 2*mu*t*c*P >= mu^2*t*w."""
        count = optimal_worker_count(mu, c, w, p)
        unclipped = math.ceil(mu * w / (2 * c))
        assert count == min(p, unclipped)
        assert 2 * mu * c * unclipped >= mu * mu * w - 1e-9
        if unclipped > 1:
            assert 2 * mu * c * (unclipped - 1) < mu * mu * w + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_worker_count(0, 1, 1, 1)
        with pytest.raises(ValueError):
            optimal_worker_count(1, 0, 1, 1)
        with pytest.raises(ValueError):
            optimal_worker_count(1, 1, 1, 0)


class TestSmallMatrix:
    def test_nu_shrinks_for_tiny_c(self):
        nu, q = small_matrix_nu(r=2, s=2, c=1.0, w=1.0, mu=10, p=8)
        assert nu <= 2
        assert q >= 1

    def test_nu_keeps_mu_when_large(self):
        nu, _ = small_matrix_nu(r=100, s=100, c=1.0, w=1.0, mu=10, p=8)
        assert nu == 10

    @given(
        r=st.integers(1, 40),
        s=st.integers(1, 40),
        mu=st.integers(1, 20),
        c=st.floats(0.1, 5),
        w=st.floats(0.1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_nu_constraint_holds(self, r, s, mu, c, w):
        nu, _ = small_matrix_nu(r, s, c, w, mu, p=16)
        if nu > 1:
            assert math.ceil(nu * w / (2 * c)) * nu * nu <= r * s

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            small_matrix_nu(0, 1, 1, 1, 1, 1)


class TestPlan:
    def test_large_matrix_plan(self):
        plat = ut_cluster_platform(p=8)
        shape = ProblemShape.from_elements(8000, 8000, 64000, q=80)
        plan = plan_homogeneous(plat, shape)
        assert plan.workers == 4
        assert plan.mu == 98
        assert not plan.small_matrix

    def test_small_matrix_triggers_nu(self):
        plat = Platform.homogeneous(8, c=0.1, w=1.0, m=10000)
        shape = ProblemShape(r=4, s=4, t=10, q=80)
        plan = plan_homogeneous(plat, shape)
        assert plan.small_matrix
        assert plan.mu <= 4

    def test_saturated_flag(self):
        # Huge mu*w/2c forces more workers than exist.
        plat = Platform.homogeneous(2, c=0.001, w=10.0, m=10000)
        shape = ProblemShape(r=500, s=500, t=10, q=80)
        plan = plan_homogeneous(plat, shape)
        assert plan.saturated
        assert plan.workers == 2

    def test_nearly_homogeneous_uses_conservative_params(self):
        plat = Platform.heterogeneous(
            [1.0, 1.01], [1.0, 1.02], [100, 99]
        )
        shape = ProblemShape(r=100, s=100, t=10, q=80)
        plan = plan_homogeneous(plat, shape)
        assert plan.mu == mu_overlap(99)


class TestStartupOverhead:
    def test_paper_example_is_about_four_percent(self):
        """'with c = 2, w = 4.5, µ = 4 and t = 100 ... at most 4%'."""
        bound = startup_overhead_fraction(mu=4, t=100, c=2.0, w=4.5)
        assert bound == pytest.approx(4 / 100 + 4 / 450)
        assert bound < 0.05

    def test_vanishes_with_t(self):
        assert startup_overhead_fraction(4, 10**6, 2.0, 4.5) < 1e-4

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            startup_overhead_fraction(4, 0, 1.0, 1.0)
