"""Tests for the experiment harness — each table/figure's headline claim.

These are the repository's "does the reproduction show what the paper
shows" checks: every experiment's ``run()`` is executed (at reduced
scale where the full one is slow) and the paper's qualitative claims
are asserted on its output rows.
"""

import math

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablations,
    bounds,
    fig04,
    fig10,
    fig11,
    fig12,
    fig13,
    hetero,
    lu,
    maxreuse_trace,
    table1,
    table2,
)


class TestFig04:
    def test_minmin_wins_a_thrifty_wins_b(self):
        rows = fig04.run(brute_force=False)
        a, b = rows
        assert a["winner"] == "Min-min"
        assert b["winner"] == "Thrifty"

    def test_neither_optimal_on_a(self):
        rows = fig04.run(brute_force=True)
        a = rows[0]
        assert a["optimal"] <= min(a["thrifty"], a["min_min"])
        assert a["optimal"] < a["thrifty"]


class TestBounds:
    def test_ordering_invariants(self):
        for row in bounds.run(memories=(21, 241, 4095), t=20):
            assert row["bound_prev_best"] < row["bound_toledo_refined"]
            assert row["bound_toledo_refined"] < row["bound_loomis_whitney"]
            assert row["bound_loomis_whitney"] <= row["ccr_maxreuse_inf"]

    def test_simulated_matches_formula(self):
        for row in bounds.run(memories=(21, 111), t=20):
            assert row["ccr_simulated(t)"] == pytest.approx(
                row["ccr_maxreuse(t)"], rel=1e-9
            )

    def test_gap_near_sqrt_32_27(self):
        row = bounds.run(memories=(10000,), t=20)[0]
        assert row["gap_vs_LW"] == pytest.approx(math.sqrt(32 / 27), rel=0.02)


class TestMaxreuseTrace:
    def test_m21_walkthrough(self):
        row = maxreuse_trace.run(m=21, t=4)
        assert row["mu"] == 4
        assert row["a_buffers"] == 1
        assert row["b_buffers"] == 4
        assert row["c_buffers"] == 16
        assert row["peak_measured"] == 21
        assert row["ccr"] == pytest.approx(row["ccr_formula"])


class TestTable1:
    def test_p1_infeasible_p2_feasible(self):
        rows = table1.run()
        assert not rows[0]["feasible"]
        assert rows[1]["feasible"]

    def test_equal_port_shares(self):
        rows = table1.run()
        assert rows[0]["2c/(mu*w)"] == rows[1]["2c/(mu*w)"] == 0.5


class TestTable2:
    def test_paper_ratios(self):
        rows = {r["algorithm"]: r for r in table2.run(steps=1500)}
        assert rows["steady-state bound"]["ratio"] == pytest.approx(25 / 18)
        assert rows["global (Algorithm 3)"]["ratio"] == pytest.approx(1.17, abs=0.01)
        assert rows["local"]["ratio"] == pytest.approx(1.21, abs=0.01)
        assert rows["lookahead depth=2"]["ratio"] == pytest.approx(1.30, abs=0.015)

    def test_ratio_ordering(self):
        rows = {r["algorithm"]: r for r in table2.run(steps=1000)}
        assert (
            rows["global (Algorithm 3)"]["ratio"]
            < rows["local"]["ratio"]
            < rows["lookahead depth=2"]["ratio"]
            < rows["steady-state bound"]["ratio"]
        )


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10.run(scale=1)

    def test_all_21_rows_present(self, rows):
        assert len(rows) == 21  # 7 algorithms x 3 workloads

    def test_optimized_layout_beats_bmm_everywhere(self, rows):
        by_workload: dict = {}
        for row in rows:
            by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row
        for algos in by_workload.values():
            for name in ("HoLM", "ORROML", "ODDOML"):
                assert algos[name]["makespan_s"] < algos["BMM"]["makespan_s"]

    def test_holm_group_similar_within_noise(self, rows):
        """HoLM/ORROML/ODDOML/DDOML within the ~6% Figure 11 band."""
        by_workload: dict = {}
        for row in rows:
            by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row
        for algos in by_workload.values():
            group = [
                algos[n]["makespan_s"]
                for n in ("HoLM", "ORROML", "ODDOML", "DDOML")
            ]
            # DDOML pays for its missing overlap a little more in our
            # model than in the paper's measurements; ~10% still counts
            # as "similar" next to BMM's 15-50% penalty.
            assert (max(group) - min(group)) / min(group) < 0.12

    def test_ommoml_slower_with_fewer_workers(self, rows):
        by_workload: dict = {}
        for row in rows:
            by_workload.setdefault(row["workload"], {})[row["algorithm"]] = row
        for algos in by_workload.values():
            assert algos["OMMOML"]["makespan_s"] > algos["HoLM"]["makespan_s"]
            assert algos["OMMOML"]["workers"] < algos["ORROML"]["workers"]

    def test_holm_uses_four_workers(self, rows):
        for row in rows:
            if row["algorithm"] == "HoLM":
                assert row["workers"] == 4


class TestFig11:
    def test_spread_in_paper_band(self):
        rows = fig11.run(runs=4, scale=8)
        worst = max(r["spread_pct"] for r in rows)
        assert 0 < worst < 15.0  # the paper's ~6% is run-dependent

    def test_all_algorithms_measured(self):
        rows = fig11.run(runs=2, scale=8)
        assert len(rows) == 7


class TestFig12:
    def test_block_size_has_little_impact(self):
        rows = fig12.run(scale=2)
        for row in rows:
            assert row["spread_pct"] < 10.0


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig13.run(scale=1, memories_mb=(132.0, 512.0))

    def test_more_memory_is_faster(self, rows):
        by_algo: dict = {}
        for row in rows:
            by_algo.setdefault(row["algorithm"], {})[row["memory_mb"]] = row
        for algo, mem_rows in by_algo.items():
            assert (
                mem_rows[512.0]["makespan_s"] <= mem_rows[132.0]["makespan_s"] * 1.001
            ), algo

    def test_holm_worker_progression_2_to_4(self, rows):
        """Figure 13: HoLM enrolls 2 workers at 132MB and 4 at 512MB."""
        holm = {r["memory_mb"]: r for r in rows if r["algorithm"] == "HoLM"}
        assert holm[132.0]["workers"] == 2
        assert holm[512.0]["workers"] == 4

    def test_holm_competitive_at_both_ends(self, rows):
        by_mem: dict = {}
        for row in rows:
            by_mem.setdefault(row["memory_mb"], {})[row["algorithm"]] = row
        for algos in by_mem.values():
            best = min(r["makespan_s"] for r in algos.values())
            assert algos["HoLM"]["makespan_s"] <= best * 1.08


class TestLU:
    def test_cost_rows_consistent(self):
        for row in lu.run_costs(mu=8, r_values=(16, 64)):
            assert row["comm_exact"] - row["comm_paper"] == pytest.approx(
                row["comm_panel_terms"]
            )
            assert row["comp_exact"] == pytest.approx(row["comp_paper"])

    def test_homogeneous_rows(self):
        rows = lu.run_homogeneous(r=196, p=8)
        assert all(r["P=ceil(mu*w/3c)"] >= 1 for r in rows)
        assert all(r["makespan_est_s"] > 0 for r in rows)

    def test_hetero_policy_rows(self):
        rows = lu.run_hetero_policies(r=36)
        assert len(rows) == 3
        assert all(r["policy"] in ("square", "columns", "virtual") for r in rows)


class TestHetero:
    def test_sweep_runs_and_is_monotone_in_bound(self):
        rows = hetero.run(degrees=(0.0, 1.0), p=3)
        assert len(rows) == 4
        for row in rows:
            assert row["makespan"] > 0
            assert 1 <= row["workers"] <= 3

    def test_degree_zero_is_homogeneous(self):
        plat = hetero.heterogeneous_family(4, 0.0)
        assert plat.is_homogeneous

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            hetero.heterogeneous_family(2, -0.5)


class TestAblations:
    def test_two_port_never_slower(self):
        rows = ablations.run_ports(scale=8)
        one, two = rows
        assert two["makespan_s"] <= one["makespan_s"] + 1e-9

    def test_overlap_helps_with_ample_memory(self):
        rows = ablations.run_overlap(memories=(360,))
        assert rows[0]["overlap_gain_pct"] > 0

    def test_startup_overhead_below_paper_bound(self):
        for row in ablations.run_startup(t_values=(25, 100)):
            assert row["c_io_fraction"] <= row["paper_bound"]

    def test_lookahead_monotone_here(self):
        rows = ablations.run_lookahead(depths=(1, 2))
        assert rows[1]["ratio"] >= rows[0]["ratio"]


class TestRegistry:
    def test_all_experiments_have_main(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert callable(getattr(module, "main", None)), name
