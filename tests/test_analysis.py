"""Tests for Gantt rendering and table formatting (repro.analysis)."""

import pytest

from repro.analysis import format_table, gantt_selection, gantt_trace
from repro.blocks import ProblemShape
from repro.core.heterogeneous import global_selection
from repro.engine import run_scheduler
from repro.platform import Platform, table2_platform
from repro.schedulers import HoLM


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title_included(self):
        assert format_table([{"x": 1}], title="T").startswith("T\n")

    def test_missing_keys_render_empty(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out

    def test_empty_rows(self):
        assert format_table([], title="nothing") == "nothing"

    def test_float_formatting(self):
        out = format_table([{"v": 1.23456789e7}, {"v": 0.0001}, {"v": 0.0}])
        assert "1.235e+07" in out
        assert "1.000e-04" in out

    def test_column_order_respected(self):
        out = format_table([{"b": 1, "a": 2}], columns=["a", "b"])
        header = out.splitlines()[0]
        assert header.index("a") < header.index("b")


class TestGanttSelection:
    def test_renders_all_rows(self):
        sel = global_selection(table2_platform(), 10**4, 10**5, 10**4, max_steps=20)
        chart = gantt_selection(sel, workers=3, width=80)
        lines = chart.splitlines()
        assert lines[0].startswith("M")
        assert any(line.startswith("P1") for line in lines)
        assert any(line.startswith("P3") for line in lines)

    def test_comm_marks_are_worker_digits(self):
        sel = global_selection(table2_platform(), 10**4, 10**5, 10**4, max_steps=20)
        chart = gantt_selection(sel, workers=3, width=80)
        master_row = chart.splitlines()[0]
        assert "2" in master_row  # first selection is P2

    def test_truncation(self):
        sel = global_selection(table2_platform(), 10**4, 10**5, 10**4, max_steps=40)
        chart = gantt_selection(sel, workers=3, width=60, max_time=500.0)
        assert "500" in chart.splitlines()[-1]

    def test_zero_horizon_rejected(self):
        sel = global_selection(table2_platform(), 10**4, 10**5, 10**4, max_steps=5)
        with pytest.raises(ValueError):
            gantt_selection(sel, workers=3, max_time=0.0)


class TestGanttTrace:
    def test_trace_chart_contains_compute_marks(self):
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        plat = Platform.homogeneous(2, c=0.5, w=0.5, m=21)
        trace = run_scheduler(HoLM(), plat, shape)
        chart = gantt_trace(trace, workers=2, width=80)
        assert "#" in chart

    def test_recv_marked_with_caret(self):
        shape = ProblemShape(r=2, s=2, t=1, q=2)
        plat = Platform.homogeneous(1, c=0.5, w=0.5, m=21)
        trace = run_scheduler(HoLM(), plat, shape)
        chart = gantt_trace(trace, workers=1, width=80)
        assert "^" in chart.splitlines()[0]
