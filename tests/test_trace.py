"""Tests for trace recording and metrics (repro.engine.trace)."""

import pytest

from repro.analysis import summarize_trace
from repro.engine.trace import CommInterval, ComputeInterval, Trace


def build_trace() -> Trace:
    tr = Trace()
    tr.add_comm(CommInterval(1, "send", 0.0, 2.0, 4, "C-in"))
    tr.add_comm(CommInterval(2, "send", 2.0, 3.0, 2, "AB"))
    tr.add_comm(CommInterval(1, "recv", 3.0, 5.0, 4, "C-out"))
    tr.add_compute(ComputeInterval(1, 2.0, 6.0, 8, "upd"))
    tr.add_compute(ComputeInterval(2, 3.0, 4.0, 2, "upd"))
    return tr


class TestMetrics:
    def test_makespan_is_last_event(self):
        assert build_trace().makespan == 6.0

    def test_comm_blocks(self):
        assert build_trace().comm_blocks == 10

    def test_total_updates(self):
        assert build_trace().total_updates == 10

    def test_ccr(self):
        assert build_trace().ccr == pytest.approx(1.0)

    def test_ccr_without_compute_raises(self):
        with pytest.raises(ValueError):
            _ = Trace().ccr

    def test_enrolled_workers(self):
        assert build_trace().enrolled_workers == (1, 2)

    def test_port_busy_and_utilisation(self):
        tr = build_trace()
        assert tr.port_busy_time(0) == pytest.approx(5.0)
        assert tr.port_utilisation(0) == pytest.approx(5.0 / 6.0)

    def test_worker_busy_and_utilisation(self):
        tr = build_trace()
        assert tr.worker_busy_time(1) == pytest.approx(4.0)
        assert tr.worker_utilisation(2) == pytest.approx(1.0 / 6.0)

    def test_memory_peak_keeps_max(self):
        tr = Trace()
        tr.note_memory(1, 5)
        tr.note_memory(1, 9)
        tr.note_memory(1, 3)
        assert tr.memory_peak[1] == 9

    def test_empty_trace_makespan_zero(self):
        assert Trace().makespan == 0.0

    def test_summarize(self):
        s = summarize_trace(build_trace())
        assert s.makespan == 6.0
        assert s.workers_used == 2
        assert s.ccr == pytest.approx(1.0)
        assert 0 < s.mean_worker_utilisation < 1


class TestInvariants:
    def test_valid_trace_passes(self):
        build_trace().check_invariants()

    def test_port_overlap_detected(self):
        tr = Trace()
        tr.add_comm(CommInterval(1, "send", 0.0, 2.0, 1))
        tr.add_comm(CommInterval(2, "send", 1.0, 3.0, 1))
        with pytest.raises(AssertionError, match="port"):
            tr.check_invariants()

    def test_different_ports_may_overlap(self):
        tr = Trace()
        tr.add_comm(CommInterval(1, "send", 0.0, 2.0, 1, "", 0))
        tr.add_comm(CommInterval(2, "recv", 1.0, 3.0, 1, "", 1))
        tr.check_invariants()  # two-port model: fine

    def test_worker_compute_overlap_detected(self):
        tr = Trace()
        tr.add_compute(ComputeInterval(1, 0.0, 2.0, 1))
        tr.add_compute(ComputeInterval(1, 1.0, 3.0, 1))
        with pytest.raises(AssertionError, match="compute"):
            tr.check_invariants()

    def test_different_workers_may_compute_concurrently(self):
        tr = Trace()
        tr.add_compute(ComputeInterval(1, 0.0, 2.0, 1))
        tr.add_compute(ComputeInterval(2, 1.0, 3.0, 1))
        tr.check_invariants()
