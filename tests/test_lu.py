"""Tests for the LU extension (repro.lu)."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lu import (
    best_pivot_size,
    block_lu,
    chunk_policy,
    lu_communication_paper_closed_form,
    lu_computation_closed_form,
    lu_makespan_estimate,
    lu_step_cost,
    lu_total_cost,
    lu_worker_count,
    verify_lu,
)
from repro.lu.heterogeneous import virtual_processors
from repro.lu.numeric import unpack_lu
from repro.platform import table2_platform, ut_cluster_platform


class TestStepCosts:
    def test_last_step_is_pivot_only(self):
        st_ = lu_step_cost(20, 5, 4)
        assert st_.comm_total == 2 * 25
        assert st_.comp_total == 125

    def test_first_step_dominates(self):
        first = lu_step_cost(20, 5, 1)
        last = lu_step_cost(20, 5, 4)
        assert first.comm_total > last.comm_total
        assert first.comp_total > last.comp_total

    def test_step_bounds_checked(self):
        with pytest.raises(ValueError):
            lu_step_cost(20, 5, 0)
        with pytest.raises(ValueError):
            lu_step_cost(20, 5, 5)

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            lu_step_cost(21, 5, 1)

    @given(n=st.integers(1, 12), mu=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_computation_matches_paper_closed_form(self, n, mu):
        """The paper's computation total (r^3 + 2mu^2 r)w/3 is exact."""
        r = n * mu
        _, comp = lu_total_cost(r, mu)
        assert comp == pytest.approx(lu_computation_closed_form(r, mu))

    @given(n=st.integers(1, 12), mu=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_communication_exact_sum_is_r3_over_mu_plus_r2(self, n, mu):
        """Summing the paper's own step costs gives r^3/mu + r^2 —
        the printed closed form under-counts the panel terms."""
        r = n * mu
        comm, _ = lu_total_cost(r, mu)
        assert comm == pytest.approx(r**3 / mu + r**2)
        paper = lu_communication_paper_closed_form(r, mu)
        assert comm - paper == pytest.approx(2.0 * r * (r - mu))


class TestHomogeneous:
    def test_worker_count_formula(self):
        assert lu_worker_count(mu=12, c=1.0, w=1.0, p=16) == 4
        assert lu_worker_count(mu=12, c=1.0, w=1.0, p=3) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lu_worker_count(0, 1, 1, 1)
        with pytest.raises(ValueError):
            lu_worker_count(1, -1, 1, 1)
        with pytest.raises(ValueError):
            lu_worker_count(1, 1, 1, 0)

    def test_lu_uses_fewer_workers_than_matmul_rule(self):
        """ceil(mu w/3c) <= ceil(mu w/2c): LU's core update ships three
        blocks per mu updates instead of two."""
        import math

        for mu, c, w in [(10, 1.0, 1.0), (98, 0.004096, 0.000293)]:
            assert lu_worker_count(mu, c, w, 100) <= math.ceil(mu * w / (2 * c))

    def test_makespan_estimate_decreases_with_workers(self):
        t1 = lu_makespan_estimate(40, 10, c=0.01, w=1.0, p=1)
        t4 = lu_makespan_estimate(40, 10, c=0.01, w=1.0, p=4)
        assert t4 < t1

    def test_makespan_estimate_positive(self):
        plat = ut_cluster_platform(p=8)
        wk = plat.workers[0]
        assert lu_makespan_estimate(196, 49, wk.c, wk.w, 8) > 0


class TestChunkPolicies:
    def test_square_when_small(self):
        pol = chunk_policy(mu_i=3, mu=10, c=1.0, w=1.0)
        assert pol.shape == "square"

    def test_columns_when_large_fraction(self):
        pol = chunk_policy(mu_i=8, mu=10, c=1.0, w=1.0)
        assert pol.shape == "columns"

    def test_threshold_at_half(self):
        """Square chunk iff mu_i <= mu/2 (the paper's inequality)."""
        assert chunk_policy(5, 10, 1, 1).shape == "square"
        assert chunk_policy(6, 10, 1, 1).shape == "columns"

    def test_ratio_formulas(self):
        c, w = 2.0, 3.0
        sq = chunk_policy(4, 10, c, w)
        assert sq.ratio == pytest.approx(4 * w / (3 * c))
        col = chunk_policy(9, 10, c, w)
        assert col.ratio == pytest.approx(81 * w / ((10 + 2 * 8.1) * c))

    def test_policy_picks_better_ratio(self):
        """Whatever shape is chosen must have the larger ratio."""
        for mu_i in range(1, 10):
            c, w = 1.7, 0.9
            pol = chunk_policy(mu_i, 10, c, w)
            square = mu_i * w / (3 * c)
            columns = mu_i**2 * w / ((10 + 2 * mu_i**2 / 10) * c)
            assert pol.ratio == pytest.approx(max(square, columns), rel=1e-9)

    def test_virtual_processors(self):
        assert virtual_processors(20, 10) == 4
        assert virtual_processors(10, 10) == 1
        assert virtual_processors(3, 10) == 1
        pol = chunk_policy(25, 10, 1.0, 1.0)
        assert pol.shape == "virtual"
        assert pol.virtual_count == 6

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            chunk_policy(0, 10, 1, 1)


class TestPivotSearch:
    def test_best_pivot_divides_r(self):
        mu, est = best_pivot_size(table2_platform(), r=36)
        assert 36 % mu == 0
        assert est > 0

    def test_candidates_respected(self):
        mu, _ = best_pivot_size(table2_platform(), r=36, candidates=[4, 12])
        assert mu in (4, 12)

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            best_pivot_size(table2_platform(), r=36, candidates=[7])  # 7 ∤ 36

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            best_pivot_size(table2_platform(), r=0)


class TestNumericLU:
    @staticmethod
    def _dominant(n, seed):
        rng = np.random.default_rng(seed)
        return rng.uniform(-1, 1, (n, n)) + n * np.eye(n)

    def test_factors_reproduce_matrix(self):
        a = self._dominant(64, 0)
        packed = block_lu(a.copy(), panel=16)
        assert verify_lu(a, packed)

    def test_matches_scipy_without_pivoting(self):
        """On a diagonally dominant matrix scipy's LU permutation is
        identity, so the factors must agree."""
        a = self._dominant(32, 1)
        packed = block_lu(a.copy(), panel=8)
        lower, upper = unpack_lu(packed)
        p, l_ref, u_ref = scipy.linalg.lu(a)
        assert np.allclose(p, np.eye(32))
        assert np.allclose(lower, l_ref, atol=1e-8)
        assert np.allclose(upper, u_ref, atol=1e-8)

    def test_panel_equal_to_n(self):
        a = self._dominant(24, 2)
        assert verify_lu(a, block_lu(a.copy(), panel=24))

    def test_panel_one(self):
        a = self._dominant(12, 3)
        assert verify_lu(a, block_lu(a.copy(), panel=1))

    def test_ragged_panel(self):
        a = self._dominant(30, 4)
        assert verify_lu(a, block_lu(a.copy(), panel=8))  # 8 ∤ 30

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            block_lu(np.zeros((3, 4)), panel=2)

    def test_invalid_panel(self):
        with pytest.raises(ValueError):
            block_lu(np.eye(4), panel=0)

    def test_zero_pivot_detected(self):
        with pytest.raises(ZeroDivisionError):
            block_lu(np.zeros((4, 4)), panel=2)

    @given(
        n_panels=st.integers(1, 4),
        panel=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_lu_property(self, n_panels, panel, seed):
        """Property: block LU with any panel width factors any
        diagonally dominant matrix."""
        n = n_panels * panel
        a = self._dominant(n, seed)
        assert verify_lu(a, block_lu(a.copy(), panel=panel))

    def test_panel_width_independence(self):
        """All panel widths produce the same factors (same arithmetic)."""
        a = self._dominant(24, 5)
        p1 = block_lu(a.copy(), panel=4)
        p2 = block_lu(a.copy(), panel=12)
        assert np.allclose(p1, p2, atol=1e-9)
