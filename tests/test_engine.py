"""Tests for the master-worker execution engine (repro.engine.engine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import ProblemShape, make_product_instance, verify_product
from repro.core.layout import (
    max_reuse_mu,
    mu_no_overlap,
    mu_overlap,
    overlapped_toledo_split,
    toledo_split,
)
from repro.engine import Engine, run_scheduler, tile_chunks
from repro.engine.engine import ChunkQueue
from repro.platform import Platform
from repro.schedulers import (
    BMM,
    DDOML,
    HoLM,
    MaxReuse,
    OBMM,
    ODDOML,
    OMMOML,
    ORROML,
    all_section8_schedulers,
)

SMALL = ProblemShape(r=4, s=6, t=3, q=3)


def small_platform(p=2, m=21):
    return Platform.homogeneous(p, c=0.5, w=0.25, m=m)


class TestChunkQueue:
    def test_pop_order_and_exhaustion(self):
        chunks = tile_chunks(SMALL, 2)
        q = ChunkQueue(chunks)
        seen = []
        while (ch := q.pop()) is not None:
            seen.append(ch)
        assert seen == chunks
        assert q.pop() is None
        assert len(q) == 0


class TestEngineMechanics:
    def test_single_chunk_timeline(self):
        """One worker, one chunk: C-in, phases, C-out; check timings."""
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=0.5, m=50)
        eng = Engine(plat, shape)
        chunks = tile_chunks(shape, 2)
        eng.env.process(eng.static_agent(0, chunks, generation_gap=2))
        eng.env.run()
        tr = eng.trace
        tr.check_invariants()
        # C-in: 4 blocks x 1.0 = [0,4]; phase0 AB 4 blocks [4,8];
        # compute0 [8,10]; phase1 [8,12]; compute1 [12,14];
        # C-out 4 blocks from 14 to 18.
        assert tr.comms[0].end == 4.0
        assert tr.computes[0].start == 8.0 and tr.computes[0].end == 10.0
        assert tr.computes[1].start == 12.0
        assert tr.makespan == 18.0

    def test_generation_gap_1_serializes(self):
        """Without spare buffers, phase j waits for compute j-1."""
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=10.0, m=50)
        eng = Engine(plat, shape)
        eng.env.process(eng.static_agent(0, tile_chunks(shape, 2), 1))
        eng.env.run()
        tr = eng.trace
        # compute0 ends 8+40=48; phase1 send starts only then.
        phase1 = [c for c in tr.comms if c.label.startswith("AB")][1]
        assert phase1.start == pytest.approx(48.0)

    def test_generation_gap_2_overlaps(self):
        """With spare buffers, phase j+1 streams during compute j."""
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=10.0, m=50)
        eng = Engine(plat, shape)
        eng.env.process(eng.static_agent(0, tile_chunks(shape, 2), 2))
        eng.env.run()
        phase1 = [c for c in eng.trace.comms if c.label.startswith("AB")][1]
        assert phase1.start == pytest.approx(8.0)  # right after phase 0

    def test_memory_cap_enforced(self):
        shape = ProblemShape(r=4, s=4, t=2, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=10)
        eng = Engine(plat, shape)
        # mu=4 tile needs 16 C buffers > 10.
        eng.env.process(eng.static_agent(0, tile_chunks(shape, 4), 2))
        with pytest.raises(RuntimeError, match="memory exceeded"):
            eng.env.run()

    def test_update_count_mismatch_detected(self):
        class HalfJob(HoLM):
            def build_chunks(self, shape, param):
                return super().build_chunks(shape, param)[:1]

            def assign(self, platform, shape, chunks):
                return {0: chunks}

        plat = small_platform(1)
        with pytest.raises(RuntimeError, match="block updates"):
            run_scheduler(HalfJob(), plat, SMALL)

    def test_data_shape_validated(self):
        a, b, c = make_product_instance(SMALL, 0)
        wrong = ProblemShape(r=5, s=6, t=3, q=3)
        with pytest.raises(ValueError):
            Engine(small_platform(), wrong, data=(a, b, c))

    def test_invalid_generation_gap(self):
        eng = Engine(small_platform(), SMALL)
        with pytest.raises(ValueError):
            list(eng.process_chunk(0, tile_chunks(SMALL, 2)[0], 3))


class TestMemoryPeaks:
    """Each layout's peak buffer usage must equal its formula."""

    def test_overlap_layout_peak(self):
        m = 60  # mu_overlap = 5 -> peak 45? mu=5: 25+20=45 <= 60
        mu = mu_overlap(m)
        shape = ProblemShape(r=mu, s=mu, t=4, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
        tr = run_scheduler(ODDOML(), plat, shape)
        assert tr.memory_peak[1] == mu * mu + 4 * mu

    def test_single_generation_peak(self):
        m = 48  # mu_no_overlap(48) = 6 -> peak 36+12 = 48
        mu = mu_no_overlap(m)
        shape = ProblemShape(r=mu, s=mu, t=4, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
        tr = run_scheduler(DDOML(), plat, shape)
        assert tr.memory_peak[1] == mu * mu + 2 * mu

    def test_bmm_peak_three_tiles(self):
        m = 75  # sigma = 5 -> peak 3*25
        sigma = toledo_split(m)
        shape = ProblemShape(r=sigma, s=sigma, t=2 * sigma, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
        tr = run_scheduler(BMM(), plat, shape)
        assert tr.memory_peak[1] == 3 * sigma * sigma

    def test_obmm_peak_five_tiles(self):
        m = 125  # sigma = 5 -> peak 5*25
        sigma = overlapped_toledo_split(m)
        shape = ProblemShape(r=sigma, s=sigma, t=2 * sigma, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
        tr = run_scheduler(OBMM(), plat, shape)
        assert tr.memory_peak[1] == 5 * sigma * sigma

    def test_max_reuse_peak(self):
        m = 21  # mu=4 -> peak 1+4+16 = 21
        mu = max_reuse_mu(m)
        shape = ProblemShape(r=mu, s=mu, t=3, q=2)
        plat = Platform.homogeneous(1, c=1.0, w=1.0, m=m)
        tr = run_scheduler(MaxReuse(), plat, shape)
        assert tr.memory_peak[1] == 1 + mu + mu * mu


class TestNumericalCorrectness:
    @pytest.mark.parametrize("scheduler_cls", [
        HoLM, ORROML, OMMOML, ODDOML, DDOML, BMM, OBMM,
    ])
    def test_all_schedulers_compute_the_product(self, scheduler_cls):
        shape = ProblemShape(r=5, s=7, t=4, q=3)
        plat = Platform.homogeneous(3, c=0.3, w=0.2, m=21)
        a, b, c0 = make_product_instance(shape, seed=11)
        c = c0.copy()
        tr = run_scheduler(scheduler_cls(), plat, shape, data=(a, b, c))
        assert verify_product(a, b, c0, c)
        assert tr.total_updates == shape.total_updates

    def test_maxreuse_computes_the_product(self):
        shape = ProblemShape(r=5, s=7, t=4, q=3)
        plat = Platform.homogeneous(1, c=0.3, w=0.2, m=21)
        a, b, c0 = make_product_instance(shape, seed=12)
        c = c0.copy()
        run_scheduler(MaxReuse(), plat, shape, data=(a, b, c))
        assert verify_product(a, b, c0, c)

    @given(
        r=st.integers(1, 6),
        s=st.integers(1, 6),
        t=st.integers(1, 4),
        p=st.integers(1, 4),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_demand_driven_correct_on_random_shapes(self, r, s, t, p, seed):
        """Property: ODDOML computes C + A.B for arbitrary block grids
        and worker counts, and the trace passes all invariants."""
        shape = ProblemShape(r=r, s=s, t=t, q=2)
        plat = Platform.homogeneous(p, c=0.4, w=0.3, m=21)
        a, b, c0 = make_product_instance(shape, seed=seed)
        c = c0.copy()
        tr = run_scheduler(ODDOML(), plat, shape, data=(a, b, c))
        assert verify_product(a, b, c0, c)
        assert tr.comm_blocks > 0


class TestOnePortSemantics:
    def test_port_never_overlaps_across_workers(self):
        shape = ProblemShape(r=6, s=6, t=3, q=2)
        plat = Platform.homogeneous(4, c=0.5, w=0.1, m=21)
        tr = run_scheduler(ORROML(), plat, shape)
        tr.check_invariants()  # includes one-port non-overlap

    def test_two_port_separates_directions(self):
        shape = ProblemShape(r=6, s=6, t=3, q=2)
        plat = Platform.homogeneous(2, c=0.5, w=0.5, m=21)
        tr = run_scheduler(HoLM(), plat, shape, two_port=True)
        assert any(c.port == 1 for c in tr.comms)
        assert all(c.port == 1 for c in tr.comms if c.direction == "recv")

    def test_two_port_no_slower_than_one_port(self):
        shape = ProblemShape(r=8, s=8, t=3, q=2)
        plat = Platform.homogeneous(3, c=0.5, w=0.2, m=21)
        t1 = run_scheduler(HoLM(), plat, shape).makespan
        t2 = run_scheduler(HoLM(), plat, shape, two_port=True).makespan
        assert t2 <= t1 + 1e-9

    def test_makespan_at_least_send_volume(self):
        """Lower bound: all input blocks cross the single port."""
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        plat = Platform.homogeneous(4, c=0.7, w=0.01, m=21)
        tr = run_scheduler(ORROML(), plat, shape)
        send_blocks = sum(c.blocks for c in tr.comms if c.direction == "send")
        assert tr.makespan >= send_blocks * 0.7 - 1e-9

    def test_makespan_at_least_compute_over_p(self):
        shape = ProblemShape(r=6, s=6, t=4, q=2)
        plat = Platform.homogeneous(2, c=0.01, w=1.0, m=21)
        tr = run_scheduler(ORROML(), plat, shape)
        assert tr.makespan >= shape.total_updates * 1.0 / 2 - 1e-9
