"""Tests for chunk/phase construction (repro.engine.chunks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import ProblemShape
from repro.engine.chunks import (
    Chunk,
    Phase,
    check_chunk_cover,
    tile_chunks,
    toledo_chunks,
)


class TestPhase:
    def test_in_blocks(self):
        ph = Phase((0, 1), a_blocks=3, b_blocks=4, updates=12)
        assert ph.in_blocks == 7


class TestChunk:
    def test_geometry(self):
        ph = Phase((0, 2), 6, 8, 24)
        ch = Chunk((0, 3), (0, 4), (ph,))
        assert ch.rows == 3
        assert ch.cols == 4
        assert ch.c_blocks == 12
        assert ch.updates == 24
        assert ch.comm_blocks == 2 * 12 + 14


class TestTileChunks:
    def test_exact_tiling(self):
        shape = ProblemShape(r=4, s=6, t=3, q=2)
        chunks = tile_chunks(shape, mu=2)
        assert len(chunks) == 2 * 3
        check_chunk_cover(shape, chunks)
        for ch in chunks:
            assert len(ch.phases) == shape.t
            for ph in ch.phases:
                assert ph.a_blocks == 2 and ph.b_blocks == 2
                assert ph.updates == 4

    def test_ragged_tiling(self):
        shape = ProblemShape(r=5, s=7, t=2, q=2)
        chunks = tile_chunks(shape, mu=3)
        check_chunk_cover(shape, chunks)
        # 2 row groups (3+2) x 3 col groups (3+3+1).
        assert len(chunks) == 6
        sizes = sorted(ch.c_blocks for ch in chunks)
        assert sizes == [2, 3, 6, 6, 9, 9]

    def test_mu_larger_than_matrix(self):
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        chunks = tile_chunks(shape, mu=10)
        assert len(chunks) == 1
        assert chunks[0].c_blocks == 4

    def test_column_panel_major_order(self):
        """All row tiles of a column panel precede the next panel
        (Algorithm 1's loop order)."""
        shape = ProblemShape(r=4, s=4, t=1, q=2)
        chunks = tile_chunks(shape, mu=2)
        cols = [ch.col_range for ch in chunks]
        assert cols == [(0, 2), (0, 2), (2, 4), (2, 4)]

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            tile_chunks(ProblemShape(r=2, s=2, t=1), mu=0)

    @given(
        r=st.integers(1, 12),
        s=st.integers(1, 12),
        t=st.integers(1, 6),
        mu=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_cover_property(self, r, s, t, mu):
        shape = ProblemShape(r=r, s=s, t=t, q=2)
        chunks = tile_chunks(shape, mu)
        check_chunk_cover(shape, chunks)
        assert sum(ch.updates for ch in chunks) == shape.total_updates


class TestToledoChunks:
    def test_sigma_wide_phases(self):
        shape = ProblemShape(r=4, s=4, t=6, q=2)
        chunks = toledo_chunks(shape, sigma=2)
        check_chunk_cover(shape, chunks)
        for ch in chunks:
            assert len(ch.phases) == 3  # t=6 in sigma=2 groups
            for ph in ch.phases:
                assert ph.a_blocks == 4  # sigma x sigma tile of A
                assert ph.b_blocks == 4
                assert ph.updates == 8  # sigma^3

    def test_ragged_k(self):
        shape = ProblemShape(r=2, s=2, t=5, q=2)
        chunks = toledo_chunks(shape, sigma=2)
        check_chunk_cover(shape, chunks)
        widths = [ph.k_range[1] - ph.k_range[0] for ph in chunks[0].phases]
        assert widths == [2, 2, 1]

    @given(
        r=st.integers(1, 10),
        s=st.integers(1, 10),
        t=st.integers(1, 8),
        sigma=st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_cover_property(self, r, s, t, sigma):
        shape = ProblemShape(r=r, s=s, t=t, q=2)
        chunks = toledo_chunks(shape, sigma)
        check_chunk_cover(shape, chunks)
        assert sum(ch.updates for ch in chunks) == shape.total_updates


class TestCheckChunkCover:
    def test_detects_double_cover(self):
        shape = ProblemShape(r=2, s=2, t=1, q=2)
        chunks = tile_chunks(shape, 2) + tile_chunks(shape, 2)
        with pytest.raises(ValueError, match="twice"):
            check_chunk_cover(shape, chunks)

    def test_detects_missing_blocks(self):
        shape = ProblemShape(r=2, s=2, t=1, q=2)
        chunks = tile_chunks(shape, 2)[:0]
        with pytest.raises(ValueError, match="cover"):
            check_chunk_cover(shape, chunks)

    def test_detects_wrong_update_count(self):
        shape = ProblemShape(r=2, s=2, t=2, q=2)
        bad = Chunk((0, 2), (0, 2), (Phase((0, 1), 2, 2, 4),))  # misses k=1
        with pytest.raises(ValueError, match="updates"):
            check_chunk_cover(shape, [bad])
