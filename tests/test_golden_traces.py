"""Golden-trace regression fixtures.

Four canonical runs — small enough that their full interval lists are
human-readable JSON — are pinned under ``tests/golden/``.  Any change
to engine event ordering, float arithmetic, chunk geometry or resource
selection shows up as a *readable diff* against the stored fixture, not
just a failed number.

To refresh after an intentional engine change::

    pytest tests/test_golden_traces.py --update-golden

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.analysis import summarize_trace
from repro.blocks import ProblemShape
from repro.engine import run_scheduler
from repro.platform import table2_platform, ut_cluster_platform
from repro.scenarios import Scenario
from repro.schedulers import DDOML, HeteroIncremental, HoLM

GOLDEN_DIR = Path(__file__).parent / "golden"


def _holm_homogeneous():
    platform = ut_cluster_platform(p=4)
    shape = ProblemShape(r=4, s=8, t=4, q=8)
    return run_scheduler(HoLM(), platform, shape)


def _hetero_global_table2():
    platform = table2_platform()
    shape = ProblemShape(r=12, s=12, t=4, q=4)
    return run_scheduler(HeteroIncremental("global"), platform, shape)


def _ddoml_two_port():
    platform = ut_cluster_platform(p=4)
    shape = ProblemShape(r=4, s=8, t=4, q=8)
    return run_scheduler(DDOML(), platform, shape, two_port=True)


def _holm_dropout_scenario():
    platform = ut_cluster_platform(p=4)
    shape = ProblemShape(r=4, s=8, t=4, q=8)
    scenario = Scenario.stationary(platform).with_slowdown(1, 2.0, 10.0)
    return run_scheduler(HoLM(), platform, shape, scenario=scenario)


CASES = {
    "holm_ut4": _holm_homogeneous,
    "hetero_global_table2": _hetero_global_table2,
    "ddoml_two_port": _ddoml_two_port,
    "holm_dropout": _holm_dropout_scenario,
}


def trace_payload(trace) -> dict:
    """The JSON image of a trace: summary first, then every interval."""
    s = summarize_trace(trace)
    return {
        "summary": {
            "makespan": s.makespan,
            "comm_blocks": s.comm_blocks,
            "updates": s.updates,
            "ccr": s.ccr,
            "workers_used": s.workers_used,
            "port_utilisation": s.port_utilisation,
            "mean_worker_utilisation": s.mean_worker_utilisation,
        },
        "memory_peak": {str(k): v for k, v in sorted(trace.memory_peak.items())},
        "comms": [list(c) for c in trace.comms],
        "computes": [list(c) for c in trace.computes],
    }


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", CASES)
def test_golden_trace(name, request):
    path = GOLDEN_DIR / f"{name}.json"
    payload = trace_payload(CASES[name]())
    got = render(payload)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(got)
        return
    assert path.exists(), (
        f"missing golden fixture {path.name}; run "
        f"`pytest {__file__} --update-golden` and commit the result"
    )
    want = path.read_text()
    if got != want:
        diff = "".join(
            difflib.unified_diff(
                want.splitlines(keepends=True),
                got.splitlines(keepends=True),
                fromfile=f"golden/{path.name}",
                tofile="current run",
                n=3,
            )
        )
        pytest.fail(
            f"trace diverged from golden fixture {path.name} "
            f"(--update-golden refreshes after intentional changes):\n{diff}"
        )
