"""End-to-end tests for the ``python -m repro`` command line.

Everything goes through :func:`repro.__main__.main` with an explicit
argv, asserting exit codes, ``--backend``/``--resume``/``--keep-going``
plumbing, and the human-readable output the CI smoke jobs grep for.
"""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.runner import ResultCache


def _sweep_argv(tmp_path, *extra):
    return [
        "sweep", "maxreuse", "--cache-dir", str(tmp_path), "--quiet", *extra
    ]


class TestExitCodes:
    def test_list_is_zero(self, capsys):
        assert cli_main([]) == 0
        out = capsys.readouterr().out
        assert "Available experiments" in out and "--backend" in out

    def test_unknown_experiment_is_two(self, capsys):
        assert cli_main(["sweep", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_bad_backend_is_two(self, tmp_path, capsys):
        assert cli_main(_sweep_argv(tmp_path, "--backend", "quantum")) == 2

    def test_resume_without_cache_is_two(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--resume", "--no-cache")
        assert cli_main(argv) == 2
        assert "--resume needs the cache" in capsys.readouterr().out

    def test_sweep_help_is_zero(self, capsys):
        with pytest.MonkeyPatch.context():
            assert cli_main(["sweep", "--help"]) == 0
        assert "--backend" in capsys.readouterr().out

    def test_bad_cache_action_is_two(self, tmp_path):
        assert cli_main(["cache", "explode", "--cache-dir", str(tmp_path)]) == 2


class TestBackendPlumbing:
    @pytest.mark.parametrize("backend", ["serial", "process", "persistent"])
    def test_backend_runs_and_stamps(self, backend, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--backend", backend, "--jobs", "2")
        assert cli_main(argv) == 0
        assert "maxreuse: 0 cached, 1 computed" in capsys.readouterr().out
        # The explicit backend is stamped into the cached entry's params.
        [entry] = [
            p for p in (tmp_path / "maxreuse").glob("*/*.json")
        ]
        params = json.loads(entry.read_text())["params"]
        assert params["backend"] == backend

    def test_backends_keep_separate_cache_namespaces(self, tmp_path, capsys):
        for backend in ("serial", "process"):
            assert cli_main(_sweep_argv(tmp_path, "--backend", backend)) == 0
        capsys.readouterr()
        assert len(list((tmp_path / "maxreuse").glob("*/*.json"))) == 2

    def test_auto_backend_leaves_points_unstamped(self, tmp_path, capsys):
        assert cli_main(_sweep_argv(tmp_path)) == 0
        capsys.readouterr()
        [entry] = list((tmp_path / "maxreuse").glob("*/*.json"))
        assert "backend" not in json.loads(entry.read_text())["params"]

    def test_warm_rerun_is_fully_cached(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path, "--backend", "persistent")
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(argv) == 0
        assert "maxreuse: 1 cached, 0 computed" in capsys.readouterr().out


class TestResume:
    def test_resume_recomputes_only_missing(self, tmp_path, capsys):
        """Simulate a killed run: drop one entry file (the manifest still
        lists it) and ``--resume`` must recompute exactly that point."""
        argv = ["sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        cache = ResultCache(tmp_path)
        keys = sorted(cache.manifest_keys("bounds"))
        assert len(keys) >= 2
        cache.path_for("bounds", keys[0]).unlink()

        assert cli_main([*argv, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert f"bounds: {len(keys) - 1} cached, 1 computed" in resumed
        # The published table is identical to the uninterrupted run's.
        strip = lambda out: [  # noqa: E731
            line for line in out.splitlines() if " in " not in line
        ]
        assert strip(resumed) == strip(cold)

    def test_resume_on_complete_cache_computes_nothing(self, tmp_path, capsys):
        argv = _sweep_argv(tmp_path)
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main([*argv, "--resume"]) == 0
        assert "maxreuse: 1 cached, 0 computed" in capsys.readouterr().out


class TestCacheCommand:
    def test_info_reports_manifest_counts(self, tmp_path, capsys):
        ResultCache(tmp_path).put("s", "k", {}, 1)
        assert cli_main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 1" in out and "sweeps    : s" in out

    def test_info_never_opens_entry_files(self, tmp_path, capsys, monkeypatch):
        """Acceptance: ``cache info`` is an index read, not a glob."""
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put("s", f"k{i}", {"i": i}, i)

        def forbidden(self, *a, **k):
            raise AssertionError("cache info touched the entry files")

        monkeypatch.setattr(ResultCache, "entries", forbidden)
        monkeypatch.setattr(ResultCache, "rebuild_manifest", forbidden)
        assert cli_main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries   : 5" in capsys.readouterr().out

    def test_rebuild_restores_corrupt_manifest(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("s", f"k{i}", {"i": i}, i)
        cache.manifest_path("s").write_text("torn{garbage\n")
        assert cli_main(["cache", "rebuild", "--cache-dir", str(tmp_path)]) == 0
        assert "rebuilt manifests for 3 entries" in capsys.readouterr().out
        assert cache.stats().entries == 3

    def test_clear(self, tmp_path, capsys):
        ResultCache(tmp_path).put("s", "k", {}, 1)
        assert cli_main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert ResultCache(tmp_path).stats().entries == 0

    def test_compact_folds_dead_history(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        for _ in range(10):
            cache.put("s", "k", {}, 1)  # nine dead records
        assert cli_main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        assert "9 dead record(s) dropped" in capsys.readouterr().out
        shard = cache.shard_manifest_path("s", "k_")  # 1-char key pads
        assert len(shard.read_text().splitlines()) == 1
        value, hit = cache.get("s", "k")
        assert hit and value == 1

    def test_compact_includes_service_journal(self, tmp_path, capsys):
        from repro.service.journal import ServiceJournal

        ResultCache(tmp_path).put("s", "k", {}, 1)
        journal = ServiceJournal(tmp_path)
        journal.request("t1", "s", 4)
        journal.done("t1")
        assert cli_main(["cache", "compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "compacted service journal: 2 record(s) dropped" in out
        assert journal.fold() == {}

    def test_migrate_moves_flat_sweep_into_shards(self, tmp_path, capsys):
        import os

        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("s", f"{i:02d}abcd", {"i": i}, i)
        # Rewrite into the pre-sharding flat layout migrate consumes.
        root = tmp_path / "s"
        lines = []
        for manifest in sorted(root.glob("*/MANIFEST.jsonl")):
            lines.append(manifest.read_text())
            manifest.unlink()
        for entry in sorted(root.glob("*/*.json")):
            os.replace(entry, root / entry.name)
        for shard in [c for c in root.iterdir() if c.is_dir()]:
            shard.rmdir()
        (root / "MANIFEST.jsonl").write_text("".join(lines))

        assert cli_main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "s: 3 entries moved into shards" in out
        assert "migrated 3 legacy flat entries" in out
        assert not list(root.glob("*.json"))
        fresh = ResultCache(tmp_path)
        assert fresh.stats().shards_per_sweep == (("s", 3),)
        for i in range(3):
            value, hit = fresh.get("s", f"{i:02d}abcd")
            assert hit and value == i

    def test_migrate_with_nothing_flat_is_quiet_success(self, tmp_path, capsys):
        ResultCache(tmp_path).put("s", "aabbcc", {}, 1)
        assert cli_main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 0 legacy flat entries" in capsys.readouterr().out


class TestCacheEnvExport:
    """--cache-dir/--no-cache must also govern worker-side cached_call
    lookups (exported via the environment for the invocation), and the
    environment must be restored afterwards."""

    def test_cache_dir_reaches_cached_call(self, tmp_path, capsys):
        """The robustness baselines (cached_call inside the point fn)
        land under --cache-dir, not the default store."""
        import os

        default_store = os.environ["REPRO_CACHE_DIR"]  # set by conftest
        argv = [
            "sweep", "robustness", "--scale", "8", "--scenario",
            "dropout:0.25", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert (tmp_path / "bench").is_dir()  # baselines under --cache-dir
        assert not list(ResultCache(default_store).entries())
        assert os.environ["REPRO_CACHE_DIR"] == default_store  # restored

    def test_enabled_cache_overrides_inherited_kill_switch(
        self, tmp_path, capsys, monkeypatch
    ):
        """REPRO_CACHE_DISABLE=1 left in the shell must not defeat an
        invocation that explicitly asks for caching."""
        import os

        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        argv = _sweep_argv(tmp_path)
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert ResultCache(tmp_path).stats().entries == 1  # cache used
        assert os.environ["REPRO_CACHE_DISABLE"] == "1"  # restored

    def test_no_cache_writes_no_baselines_anywhere(self, tmp_path, capsys):
        import os

        default_store = os.environ["REPRO_CACHE_DIR"]
        argv = [
            "sweep", "robustness", "--scale", "8", "--scenario",
            "dropout:0.25", "--cache-dir", str(tmp_path), "--no-cache",
            "--quiet",
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert not list(tmp_path.rglob("*.json"))
        assert not list(ResultCache(default_store).entries())
        assert "REPRO_CACHE_DISABLE" not in os.environ  # restored


class TestKeepGoing:
    def test_keep_going_reports_failures_and_exits_one(
        self, tmp_path, capsys, monkeypatch
    ):
        """A failing point under --keep-going yields the partial table,
        a failure count in the summary, and exit code 1."""
        import repro.experiments.bounds as bounds

        real_point = bounds._point

        def flaky(params):
            if params["m"] == bounds.DEFAULT_MEMORIES[1]:
                raise RuntimeError("injected failure")
            return real_point(params)

        monkeypatch.setattr(bounds, "_point", flaky)
        argv = [
            "sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet",
            "--keep-going",
        ]
        assert cli_main(argv) == 1
        out = capsys.readouterr().out
        assert "(1 failed)" in out

    def test_default_aborts_with_exit_one(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.bounds as bounds

        def always_fail(params):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(bounds, "_point", always_fail)
        argv = ["sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli_main(argv) == 1
        assert "sweep failed" in capsys.readouterr().err

    def test_keep_going_summary_lists_failing_params(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.experiments.bounds as bounds

        real_point = bounds._point

        def flaky(params):
            if params["m"] == bounds.DEFAULT_MEMORIES[1]:
                raise RuntimeError("injected failure")
            return real_point(params)

        monkeypatch.setattr(bounds, "_point", flaky)
        argv = [
            "sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet",
            "--keep-going",
        ]
        assert cli_main(argv) == 1
        err = capsys.readouterr().err
        assert "did not produce results" in err
        assert f"'m': {bounds.DEFAULT_MEMORIES[1]}" in err
        assert "injected failure" in err


class TestFaultToleranceFlags:
    """--retries/--timeout/--max-failures/--chaos/--retry-quarantined."""

    def test_bad_chaos_spec_is_two(self, tmp_path, capsys):
        assert cli_main(_sweep_argv(tmp_path, "--chaos", "bogus=1")) == 2
        assert "bad --chaos" in capsys.readouterr().out

    def test_bad_retries_is_two(self, tmp_path, capsys):
        assert cli_main(_sweep_argv(tmp_path, "--retries", "-1")) == 2
        assert "bad arguments" in capsys.readouterr().out

    def test_retry_quarantined_requires_resume(self, tmp_path, capsys):
        assert cli_main(_sweep_argv(tmp_path, "--retry-quarantined")) == 2
        assert "--retry-quarantined" in capsys.readouterr().out

    def test_transient_chaos_with_retries_matches_clean_run(
        self, tmp_path, capsys
    ):
        """Acceptance: seeded transient chaos plus retries produces the
        clean run's table, cache keys, and exit code."""
        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"
        argv = ["sweep", "bounds", "--quiet"]
        assert cli_main([*argv, "--cache-dir", str(clean_dir)]) == 0
        clean_out = capsys.readouterr().out
        assert cli_main(
            [*argv, "--cache-dir", str(chaos_dir),
             "--chaos", "fail=0.4,seed=5", "--retries", "2"]
        ) == 0
        chaos_out = capsys.readouterr().out
        strip = lambda out: [  # noqa: E731
            line for line in out.splitlines() if " in " not in line
        ]
        assert strip(chaos_out) == strip(clean_out)
        assert sorted(ResultCache(clean_dir).manifest("bounds")) == sorted(
            ResultCache(chaos_dir).manifest("bounds")
        )

    def test_permanent_chaos_trips_breaker_then_resume_skips(
        self, tmp_path, capsys
    ):
        """Acceptance: a permanent profile trips the breaker with the
        structured report and quarantines; --resume then skips the
        quarantined points (exit 1 both times, the run is incomplete)."""
        argv = [
            "sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet",
            "--chaos", "fail=0.4,seed=5,sticky=permanent",
            "--retries", "1", "--max-failures", "1",
        ]
        assert cli_main(argv) == 1
        err = capsys.readouterr().err
        assert "circuit breaker opened" in err and "attempts=2" in err
        quarantined = ResultCache(tmp_path).quarantined("bounds")
        assert len(quarantined) == 1

        assert cli_main(
            ["cache", "info", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "quarantined: 1 known-permanent" in capsys.readouterr().out

        resume_argv = [
            "sweep", "bounds", "--cache-dir", str(tmp_path), "--quiet",
            "--resume", "--keep-going",
        ]
        assert cli_main(resume_argv) == 1
        captured = capsys.readouterr()
        assert "(1 quarantined, skipped)" in captured.out
        assert "did not produce results" in captured.err

        # --retry-quarantined without chaos computes the point and clears
        assert cli_main([*resume_argv, "--retry-quarantined"]) == 0
        capsys.readouterr()
        assert ResultCache(tmp_path).quarantined("bounds") == {}

    def test_progress_shows_retry_and_failure_counts(
        self, tmp_path, capsys
    ):
        argv = [
            "sweep", "bounds", "--cache-dir", str(tmp_path),
            "--chaos", "fail=0.4,seed=5,sticky=permanent",
            "--retries", "1", "--keep-going",
        ]
        assert cli_main(argv) == 1
        err = capsys.readouterr().err
        assert "RETRYING" in err
        assert "FAILED" in err and "failed, 0 quarantined]" in err
